//! The simulated device: profile + caching allocator + modeled timeline.

use crate::alloc::{AllocOutcome, Pool};
use crate::buffer::DeviceBuffer;
use crate::error::GpuError;
use crate::fault::{FaultPlan, FaultState, FaultStats};
use crate::launch::{AllocMode, KernelDesc, LaunchConfig, DEFAULT_BLOCK};
use crate::profiler::Profiler;
use crate::stream::{Event, StreamWindow};
use crate::sync::Mutex;
use perf_model::{
    gpu_kernel_time, transfer_time, AllocKind, AllocRecord, Counters, GpuProfile, KernelRecord,
    LinkProfile, Phase, ProfilerLog, Timeline, TransferDirection, TransferRecord,
};
use std::sync::Arc;

/// Modeled time of one device-wide synchronization (`cudaDeviceSynchronize`).
const SYNC_OVERHEAD_S: f64 = 3.0e-6;

/// Modeled time of one grid-wide barrier
/// (`cooperative_groups::grid_group::sync()`): resident threads rendezvous
/// on-device without a host round-trip, so it is much cheaper than
/// [`SYNC_OVERHEAD_S`]. Charged by [`Device::synchronize`] inside an open
/// persistent region and by the cooperative grid launches in
/// [`crate::coop`].
pub(crate) const GRID_SYNC_OVERHEAD_S: f64 = 0.5e-6;

/// Host-visible tallies of one closed persistent region, returned by
/// [`Device::end_persistent`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PersistentStats {
    /// Kernel passes executed device-resident inside the region (each was
    /// recorded with zero host launches).
    pub inner_passes: u64,
    /// Grid-wide barriers charged inside the region.
    pub grid_syncs: u64,
}

/// Bookkeeping of an open persistent-kernel region (see
/// [`Device::begin_persistent`]).
struct PersistentRegion {
    inner_passes: u64,
    grid_syncs: u64,
}

/// Bookkeeping for retried operations (see [`Device::mark_redundant`]).
///
/// A resilient caller that re-executes work after a transient fault marks
/// the *completed* operations of the failed attempt as redundant; the next
/// that-many gated operations are then charged to [`Phase::Recovery`]
/// instead of their natural phase, so fault-free and faulted runs agree on
/// every non-recovery phase and retried work is never double-counted.
#[derive(Default)]
pub(crate) struct RedundantWork {
    pub launches: u64,
    pub allocs: u64,
    pub transfers: u64,
    /// Set by the launch gate; inherited by every kernel charge until the
    /// next gate (multi-pass entry points charge several kernels per gate).
    pub launch_in_recovery: bool,
    /// Set by the upload gate; consumed by the next H2D charge.
    pub transfer_in_recovery: bool,
}

pub(crate) struct DeviceState {
    pub timeline: Timeline,
    pub pool: Pool,
    pub alloc_mode: AllocMode,
    pub bytes_in_use: usize,
    pub peak_bytes: usize,
    pub fault: FaultState,
    pub profiler: Profiler,
    pub redundant: RedundantWork,
    pub stream: StreamWindow,
    persistent: Option<PersistentRegion>,
}

impl DeviceState {
    /// Modeled start time and stream lane for a charge of `dur` seconds.
    /// With a stream window open the op queues on the bound lane, starting
    /// at the lane's frontier (so intervals on different lanes overlap);
    /// otherwise it starts at the serial timeline front on lane 0.
    fn queue_charge(&mut self, dur: f64) -> (f64, u32) {
        if self.stream.open {
            let lane = self.stream.current;
            let frontier = self.stream.frontier.entry(lane).or_insert(0.0);
            let start = self.stream.base_s + *frontier;
            *frontier += dur;
            self.stream.serial_s += dur;
            self.timeline.charge_lane(lane, dur);
            (start, lane)
        } else {
            (self.timeline.total_seconds(), 0)
        }
    }
}

pub(crate) struct DeviceShared {
    pub profile: GpuProfile,
    pub link: LinkProfile,
    pub index: usize,
    pub state: Mutex<DeviceState>,
}

impl DeviceShared {
    /// Charge modeled seconds + counters to a phase.
    pub fn charge(&self, phase: Phase, seconds: f64, counters: Counters) {
        self.state.lock().timeline.charge(phase, seconds, counters);
    }
}

/// A handle to one simulated GPU.
///
/// Cloning a `Device` yields another handle to the *same* device (same
/// allocator, same timeline), mirroring how CUDA contexts are shared.
#[derive(Clone)]
pub struct Device {
    pub(crate) shared: Arc<DeviceShared>,
}

impl Device {
    /// Create a device with an explicit profile and interconnect.
    pub fn new(profile: GpuProfile, link: LinkProfile) -> Self {
        Self::with_index(profile, link, 0)
    }

    /// Create a device with an explicit multi-GPU index.
    pub fn with_index(profile: GpuProfile, link: LinkProfile, index: usize) -> Self {
        Device {
            shared: Arc::new(DeviceShared {
                profile,
                link,
                index,
                state: Mutex::new(DeviceState {
                    timeline: Timeline::new(),
                    pool: Pool::new(),
                    alloc_mode: AllocMode::Caching,
                    bytes_in_use: 0,
                    peak_bytes: 0,
                    fault: FaultState::default(),
                    profiler: Profiler::default(),
                    redundant: RedundantWork::default(),
                    stream: StreamWindow::default(),
                    persistent: None,
                }),
            }),
        }
    }

    /// The paper's GPU: a Tesla V100 behind PCIe 3.0 x16.
    pub fn v100() -> Self {
        Self::new(GpuProfile::tesla_v100(), LinkProfile::pcie3_x16())
    }

    /// Device index within a [`crate::DeviceGroup`] (0 for standalone).
    pub fn index(&self) -> usize {
        self.shared.index
    }

    /// The device's hardware profile.
    pub fn profile(&self) -> GpuProfile {
        self.shared.profile.clone()
    }

    /// Select the allocation strategy (Table 4 ablation).
    pub fn set_alloc_mode(&self, mode: AllocMode) {
        let mut st = self.shared.state.lock();
        st.alloc_mode = mode;
        if mode == AllocMode::Realloc {
            st.pool.clear();
        }
    }

    /// Current allocation strategy.
    pub fn alloc_mode(&self) -> AllocMode {
        self.shared.state.lock().alloc_mode
    }

    /// Attach a fault-injection plan. Operation ordinals restart at 1 from
    /// this call, so a plan's fault positions are relative to attach time.
    pub fn set_fault_plan(&self, plan: FaultPlan) {
        let mut st = self.shared.state.lock();
        st.fault = FaultState {
            plan: Some(plan),
            ..FaultState::default()
        };
    }

    /// Detach any fault plan (counters keep running, nothing fires).
    pub fn clear_fault_plan(&self) {
        self.shared.state.lock().fault.plan = None;
    }

    /// Operation counts and injected-fault totals since the plan attach.
    pub fn fault_stats(&self) -> FaultStats {
        let st = self.shared.state.lock();
        FaultStats {
            launches: st.fault.launches,
            allocs: st.fault.allocs,
            transfers: st.fault.transfers,
            injected: st.fault.injected,
            lost: st.fault.lost,
        }
    }

    /// Whether the device has been permanently lost.
    pub fn is_lost(&self) -> bool {
        self.shared.state.lock().fault.lost
    }

    /// Fault-injection gate at the top of every launch entry point: counts
    /// the launch and fails it if the attached plan says so. Public so
    /// out-of-crate code that models launches through
    /// [`Device::charge_kernel`] (the baselines, `tgbm`) can opt into the
    /// same fault behavior.
    pub fn begin_launch(&self) -> Result<(), GpuError> {
        let mut st = self.shared.state.lock();
        if st.fault.lost {
            return Err(GpuError::DeviceLost(self.shared.index));
        }
        st.fault.launches += 1;
        let ordinal = st.fault.launches;
        if let Some(plan) = &st.fault.plan {
            if plan.loss_at(ordinal) {
                st.fault.lost = true;
                st.fault.injected += 1;
                return Err(GpuError::DeviceLost(self.shared.index));
            }
            if plan.launch_fault_at(ordinal) {
                st.fault.injected += 1;
                return Err(GpuError::TransientLaunch {
                    device: self.shared.index,
                    launch: ordinal,
                });
            }
        }
        st.redundant.launch_in_recovery = st.redundant.launches > 0;
        st.redundant.launches = st.redundant.launches.saturating_sub(1);
        Ok(())
    }

    /// Fault-injection gate for host→device transfers (uploads). Transfer
    /// ordinals count uploads only: downloads have no error channel.
    pub(crate) fn begin_transfer(&self) -> Result<(), GpuError> {
        let mut st = self.shared.state.lock();
        if st.fault.lost {
            return Err(GpuError::DeviceLost(self.shared.index));
        }
        st.fault.transfers += 1;
        let ordinal = st.fault.transfers;
        if let Some(plan) = &st.fault.plan {
            if plan.transfer_fault_at(ordinal) {
                st.fault.injected += 1;
                return Err(GpuError::CorruptedTransfer {
                    device: self.shared.index,
                    transfer: ordinal,
                });
            }
        }
        st.redundant.transfer_in_recovery = st.redundant.transfers > 0;
        st.redundant.transfers = st.redundant.transfers.saturating_sub(1);
        Ok(())
    }

    /// Allocate a zero-initialized device buffer of `len` elements.
    pub fn alloc<T: Default + Clone + Send + Sync + 'static>(
        &self,
        len: usize,
    ) -> Result<DeviceBuffer<T>, GpuError> {
        let bytes = len * std::mem::size_of::<T>();
        let mut st = self.shared.state.lock();
        if st.fault.lost {
            return Err(GpuError::DeviceLost(self.shared.index));
        }
        st.fault.allocs += 1;
        let alloc_ordinal = st.fault.allocs;
        if let Some(plan) = &st.fault.plan {
            if plan.alloc_fault_at(alloc_ordinal) {
                st.fault.injected += 1;
                return Err(GpuError::TransientAlloc {
                    device: self.shared.index,
                    alloc: alloc_ordinal,
                });
            }
        }
        if st.bytes_in_use + bytes > self.shared.profile.global_mem {
            return Err(GpuError::OutOfMemory {
                requested: bytes,
                in_use: st.bytes_in_use,
                capacity: self.shared.profile.global_mem,
            });
        }
        let (data, outcome) = match st.alloc_mode {
            AllocMode::Caching => st.pool.acquire::<T>(len),
            AllocMode::Realloc => (vec![T::default(); len], AllocOutcome::Miss),
        };
        st.bytes_in_use += bytes;
        st.peak_bytes = st.peak_bytes.max(st.bytes_in_use);
        let mut c = Counters::new();
        let (seconds, kind) = match outcome {
            AllocOutcome::Miss => {
                c.device_allocs = 1;
                (
                    self.shared.profile.device_alloc_cost_s,
                    AllocKind::DriverAlloc,
                )
            }
            AllocOutcome::CacheHit => {
                c.device_alloc_cache_hits = 1;
                // A pool lookup is a couple of host instructions.
                (
                    self.shared.profile.device_alloc_cost_s * 0.02,
                    AllocKind::CacheHit,
                )
            }
        };
        let phase = if st.redundant.allocs > 0 {
            st.redundant.allocs -= 1;
            Phase::Recovery
        } else {
            Phase::Other
        };
        let record = AllocRecord {
            device: self.shared.index,
            phase,
            start_s: st.timeline.total_seconds(),
            duration_s: seconds,
            bytes: bytes as u64,
            kind,
            ordinal: alloc_ordinal,
        };
        st.profiler.record_alloc(record);
        st.timeline.charge(phase, seconds, c);
        drop(st);
        Ok(DeviceBuffer::new(data, self.shared.clone()))
    }

    /// Allocate a buffer and upload `src` into it.
    pub fn alloc_from_slice<T: Default + Clone + Send + Sync + 'static>(
        &self,
        src: &[T],
    ) -> Result<DeviceBuffer<T>, GpuError> {
        let mut buf = self.alloc(src.len())?;
        buf.upload(src)?;
        Ok(buf)
    }

    /// Charge one kernel launch described by `desc` to the timeline and
    /// record it in the profiler.
    ///
    /// Called internally by the `launch_*` methods; exposed for
    /// implementations (like the baselines) that model kernels whose bodies
    /// run through other entry points.
    pub fn charge_kernel(&self, desc: &KernelDesc) {
        let work = desc.work();
        let config = desc
            .config
            .unwrap_or_else(|| LaunchConfig::one_per_element(desc.threads.max(1), DEFAULT_BLOCK));
        let mut st = self.shared.state.lock();
        // Inside an open persistent region the pass runs device-resident:
        // no host launch, so the per-launch overhead and the launch count
        // move to the region record (charged at `begin_persistent`). All
        // compute/memory counters are unchanged.
        let in_region = st.persistent.is_some();
        let t = if in_region {
            let r = st.persistent.as_mut().expect("region checked open");
            r.inner_passes += 1;
            (gpu_kernel_time(&self.shared.profile, &work)
                - self.shared.profile.kernel_launch_overhead_s)
                .max(0.0)
        } else {
            gpu_kernel_time(&self.shared.profile, &work)
        };
        let mut c = Counters::new();
        c.flops = work.flops;
        c.tensor_flops = work.tensor_flops;
        c.dram_read_bytes = work.dram_read_bytes;
        c.dram_write_bytes = work.dram_write_bytes;
        c.shared_bytes = work.shared_bytes;
        c.kernel_launches = u64::from(!in_region);
        // Mirror the model's occupancy logic for the record.
        let launched = if work.launched_threads == 0 {
            work.threads
        } else {
            work.launched_threads.min(work.threads)
        };
        let max_resident = self.shared.profile.max_resident_threads().max(1);
        let occupancy = launched.min(max_resident) as f64 / max_resident as f64;
        let bw_fraction = if t > 0.0 {
            (work.dram_read_bytes + work.dram_write_bytes) as f64
                / t
                / self.shared.profile.mem_bandwidth
        } else {
            0.0
        };
        let phase = if st.redundant.launch_in_recovery {
            Phase::Recovery
        } else {
            desc.phase
        };
        let (start_s, stream) = st.queue_charge(t);
        let record = KernelRecord {
            name: desc.name,
            device: self.shared.index,
            phase,
            start_s,
            duration_s: t,
            grid: [config.grid.x, config.grid.y, config.grid.z],
            block: [config.block.x, config.block.y, config.block.z],
            threads: work.threads,
            launched_threads: launched,
            flops: work.flops,
            tensor_flops: work.tensor_flops,
            dram_read_bytes: work.dram_read_bytes,
            dram_write_bytes: work.dram_write_bytes,
            shared_bytes: work.shared_bytes,
            occupancy,
            bw_fraction,
            ordinal: st.fault.launches,
            stream,
            launches: u64::from(!in_region),
        };
        st.profiler.record_kernel(record);
        st.timeline.charge(phase, t, c);
    }

    /// Open a persistent-kernel region: one host launch whose grid stays
    /// resident on the device until [`Device::end_persistent`].
    ///
    /// While the region is open, every kernel charged through
    /// [`Device::charge_kernel`] models a device-resident *pass* of the
    /// persistent grid instead of a fresh launch: it costs its own
    /// compute/memory time minus the per-launch overhead and counts zero
    /// `kernel_launches` (the single launch is charged here, so profiler
    /// and timeline totals stay exact). [`Device::synchronize`] becomes a
    /// grid-wide barrier at `GRID_SYNC_OVERHEAD_S`. Launch fault gates
    /// ([`Device::begin_launch`]) keep counting ordinals exactly as in
    /// per-launch mode, so fault plans fire at the same positions.
    ///
    /// `threads` is the grid's resident thread count; a grid-wide barrier
    /// requires full co-residency, so values above the profile's
    /// `max_resident_threads` are rejected. Nested regions are rejected.
    /// The region open does not consume a fault ordinal — the first inner
    /// pass's gate stands in for the real launch.
    pub fn begin_persistent(
        &self,
        name: &'static str,
        phase: Phase,
        threads: u64,
    ) -> Result<(), GpuError> {
        let max_resident = self.shared.profile.max_resident_threads();
        let mut st = self.shared.state.lock();
        if st.fault.lost {
            return Err(GpuError::DeviceLost(self.shared.index));
        }
        if st.persistent.is_some() {
            return Err(GpuError::InvalidLaunch(
                "persistent regions cannot nest".into(),
            ));
        }
        if threads == 0 {
            return Err(GpuError::InvalidLaunch(
                "persistent region needs at least one resident thread".into(),
            ));
        }
        if threads > max_resident {
            return Err(GpuError::InvalidLaunch(format!(
                "persistent region needs {threads} co-resident threads, \
                 device holds {max_resident}"
            )));
        }
        let t = self.shared.profile.kernel_launch_overhead_s;
        let mut c = Counters::new();
        c.kernel_launches = 1;
        let config = LaunchConfig::one_per_element(threads, DEFAULT_BLOCK);
        let phase = if st.redundant.launch_in_recovery {
            Phase::Recovery
        } else {
            phase
        };
        let (start_s, stream) = st.queue_charge(t);
        let record = KernelRecord {
            name,
            device: self.shared.index,
            phase,
            start_s,
            duration_s: t,
            grid: [config.grid.x, config.grid.y, config.grid.z],
            block: [config.block.x, config.block.y, config.block.z],
            threads,
            launched_threads: threads,
            flops: 0,
            tensor_flops: 0,
            dram_read_bytes: 0,
            dram_write_bytes: 0,
            shared_bytes: 0,
            occupancy: threads as f64 / max_resident.max(1) as f64,
            bw_fraction: 0.0,
            ordinal: st.fault.launches,
            stream,
            launches: 1,
        };
        st.profiler.record_kernel(record);
        st.timeline.charge(phase, t, c);
        st.persistent = Some(PersistentRegion {
            inner_passes: 0,
            grid_syncs: 0,
        });
        Ok(())
    }

    /// Close the open persistent region and return its tallies. Safe to
    /// call on a lost device (the region is host-side bookkeeping) and
    /// when no region is open (returns zeroed stats), so error-path
    /// cleanup never needs its own error handling.
    pub fn end_persistent(&self) -> PersistentStats {
        let mut st = self.shared.state.lock();
        match st.persistent.take() {
            Some(r) => PersistentStats {
                inner_passes: r.inner_passes,
                grid_syncs: r.grid_syncs,
            },
            None => PersistentStats::default(),
        }
    }

    /// Whether a persistent region is currently open.
    pub fn in_persistent(&self) -> bool {
        self.shared.state.lock().persistent.is_some()
    }

    /// Charge a host↔device transfer of `bytes` to the timeline and record
    /// it in the profiler.
    pub(crate) fn charge_transfer(&self, phase: Phase, dir: TransferDirection, bytes: u64) {
        let t = transfer_time(&self.shared.link, bytes);
        let mut c = Counters::new();
        c.record_transfer(dir, bytes);
        let mut st = self.shared.state.lock();
        let (phase, ordinal) = match dir {
            // Uploads pass the fault gate; redirect a marked-redundant one.
            TransferDirection::H2D => {
                let p = if st.redundant.transfer_in_recovery {
                    st.redundant.transfer_in_recovery = false;
                    Phase::Recovery
                } else {
                    phase
                };
                (p, st.fault.transfers)
            }
            // Downloads have no gate and carry no ordinal.
            TransferDirection::D2H => (phase, 0),
        };
        let (start_s, stream) = st.queue_charge(t);
        let record = TransferRecord {
            device: self.shared.index,
            phase,
            start_s,
            duration_s: t,
            bytes,
            dir,
            ordinal,
            stream,
        };
        st.profiler.record_transfer(record);
        st.timeline.charge(phase, t, c);
    }

    /// Declare the next `launches`/`allocs`/`transfers` gated operations
    /// redundant re-executions of already-counted work: they will be
    /// charged to [`Phase::Recovery`] instead of their natural phase.
    ///
    /// Called by resilient retry loops after a transient fault with the
    /// number of operations the failed attempt had already completed, so
    /// aggregate per-phase counters match a fault-free run exactly and the
    /// repeat cost is attributed to recovery (never double-counted into
    /// Init/Eval/.../SwarmUpdate).
    pub fn mark_redundant(&self, launches: u64, allocs: u64, transfers: u64) {
        let mut st = self.shared.state.lock();
        st.redundant.launches += launches;
        st.redundant.allocs += allocs;
        st.redundant.transfers += transfers;
    }

    /// Charge an externally computed cost to the timeline. For callers
    /// (like `tgbm`) that extend the kernel-time model with effects the
    /// built-in roofline does not capture (block-count imbalance across
    /// SMs, launch-geometry tails) — the built-in `launch_*` entry points
    /// should be preferred everywhere else.
    pub fn charge_raw(&self, phase: Phase, seconds: f64, counters: Counters) {
        self.shared.charge(phase, seconds, counters);
    }

    /// Model a `cudaDeviceSynchronize`, charged to `phase`. Inside an open
    /// persistent region this is a grid-wide barrier instead: the resident
    /// grid rendezvouses on-device at `GRID_SYNC_OVERHEAD_S` without a
    /// host round-trip.
    pub fn synchronize(&self, phase: Phase) {
        let mut st = self.shared.state.lock();
        let t = match st.persistent.as_mut() {
            Some(r) => {
                r.grid_syncs += 1;
                GRID_SYNC_OVERHEAD_S
            }
            None => SYNC_OVERHEAD_S,
        };
        st.timeline.charge(phase, t, Counters::new());
    }

    /// Queue subsequent charges on stream lane `id`, opening a stream
    /// window (based at the current timeline front) if none is open. See
    /// [`crate::stream`] for the overlap model.
    pub fn bind_stream(&self, id: u32) {
        let mut st = self.shared.state.lock();
        if !st.stream.open {
            st.stream = StreamWindow {
                open: true,
                base_s: st.timeline.total_seconds(),
                ..StreamWindow::default()
            };
        }
        st.stream.current = id;
    }

    /// Record an [`Event`] at the currently bound lane's frontier (the
    /// analogue of `cudaEventRecord`). With no window open the event sits
    /// at offset zero and waiting on it is a no-op.
    pub fn record_event(&self) -> Event {
        let st = self.shared.state.lock();
        let lane = st.stream.current;
        Event {
            stream: lane,
            offset_s: st.stream.frontier.get(&lane).copied().unwrap_or(0.0),
        }
    }

    /// Stall the currently bound lane until `ev`'s recorded position (the
    /// analogue of `cudaStreamWaitEvent`). No-op outside a stream window.
    pub fn wait_event(&self, ev: &Event) {
        let mut st = self.shared.state.lock();
        if !st.stream.open {
            return;
        }
        let lane = st.stream.current;
        let frontier = st.stream.frontier.entry(lane).or_insert(0.0);
        if ev.offset_s > *frontier {
            *frontier = ev.offset_s;
        }
    }

    /// Close the stream window: compute the lane time hidden by concurrent
    /// execution (queued serial seconds minus the longest lane frontier),
    /// credit it to the timeline as overlap and return it. The analogue of
    /// the device-wide sync point where all streams converge. No-op (0.0)
    /// when no window is open.
    pub fn join_streams(&self) -> f64 {
        let mut st = self.shared.state.lock();
        if !st.stream.open {
            return 0.0;
        }
        let credit = st.stream.overlap_s();
        st.timeline.credit_overlap(credit);
        st.stream = StreamWindow::default();
        credit
    }

    /// Snapshot of the modeled timeline.
    pub fn timeline(&self) -> Timeline {
        self.shared.state.lock().timeline.clone()
    }

    /// Total counters across all phases.
    pub fn counters(&self) -> Counters {
        self.shared.state.lock().timeline.total_counters()
    }

    /// Snapshot of everything the profiler recorded since the last reset.
    pub fn profiler(&self) -> ProfilerLog {
        self.shared.state.lock().profiler.snapshot()
    }

    /// Bound the profiler's ring buffers (records beyond the bound evict
    /// the oldest entry and are counted, see [`ProfilerLog::is_complete`]).
    pub fn set_profiler_capacity(&self, kernels: usize, allocs: usize, transfers: usize) {
        self.shared
            .state
            .lock()
            .profiler
            .set_capacity(kernels, allocs, transfers);
    }

    /// Drop all profiler records (capacities persist).
    pub fn reset_profiler(&self) {
        self.shared.state.lock().profiler.clear();
    }

    /// Reset the timeline (counters and modeled time) and the profiler
    /// records, without touching the allocator pool. Used between benchmark
    /// repetitions — the two views always cover the same span.
    pub fn reset_timeline(&self) {
        let mut st = self.shared.state.lock();
        st.timeline = Timeline::new();
        st.profiler.clear();
        st.stream = StreamWindow::default();
        st.persistent = None;
    }

    /// Reset timeline, profiler *and* drop all pooled memory (full device
    /// reset).
    pub fn reset(&self) {
        let mut st = self.shared.state.lock();
        st.timeline = Timeline::new();
        st.profiler.clear();
        st.pool.clear();
        st.stream = StreamWindow::default();
        st.persistent = None;
    }

    /// Bytes currently allocated on the device.
    pub fn bytes_in_use(&self) -> usize {
        self.shared.state.lock().bytes_in_use
    }

    /// High-water mark of device memory use.
    pub fn peak_bytes(&self) -> usize {
        self.shared.state.lock().peak_bytes
    }

    /// Derived throughput metrics (the paper's Table 3 quantities).
    pub fn metrics(&self) -> DeviceMetrics {
        let tl = self.timeline();
        DeviceMetrics::from_timeline(&tl)
    }
}

/// Derived whole-run metrics, as reported in the paper's Table 3.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeviceMetrics {
    /// Total modeled seconds.
    pub elapsed_s: f64,
    /// DRAM read throughput in GB/s (`dram_read_throughtput` in the paper).
    pub dram_read_gbs: f64,
    /// DRAM write throughput in GB/s.
    pub dram_write_gbs: f64,
    /// Sustained GFLOP/s over the run (CUDA + tensor cores).
    pub gflops: f64,
    /// Number of kernel launches.
    pub kernel_launches: u64,
    /// Device allocations that went to the driver.
    pub device_allocs: u64,
    /// Device allocations served by the caching pool.
    pub cache_hits: u64,
}

impl DeviceMetrics {
    /// Compute metrics from a timeline snapshot.
    pub fn from_timeline(tl: &Timeline) -> Self {
        let c = tl.total_counters();
        let t = tl.total_seconds();
        let inv = if t > 0.0 { 1.0 / t } else { 0.0 };
        DeviceMetrics {
            elapsed_s: t,
            dram_read_gbs: c.dram_read_bytes as f64 * inv / 1e9,
            dram_write_gbs: c.dram_write_bytes as f64 * inv / 1e9,
            gflops: (c.flops + c.tensor_flops) as f64 * inv / 1e9,
            kernel_launches: c.kernel_launches,
            device_allocs: c.device_allocs,
            cache_hits: c.device_alloc_cache_hits,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use perf_model::Phase;

    #[test]
    fn alloc_tracks_bytes_and_oom() {
        let dev = Device::v100();
        let cap = dev.profile().global_mem;
        let a = dev.alloc::<f32>(1024).unwrap();
        assert_eq!(dev.bytes_in_use(), 4096);
        let err = match dev.alloc::<u8>(cap) {
            Err(e) => e,
            Ok(_) => panic!("allocation over capacity must fail"),
        };
        assert!(matches!(err, GpuError::OutOfMemory { .. }));
        drop(a);
        assert_eq!(dev.bytes_in_use(), 0);
        assert_eq!(dev.peak_bytes(), 4096);
    }

    #[test]
    fn caching_mode_recycles_and_counts_hits() {
        let dev = Device::v100();
        let buf = dev.alloc::<f32>(1000).unwrap();
        drop(buf);
        let _buf2 = dev.alloc::<f32>(1000).unwrap();
        let c = dev.counters();
        assert_eq!(c.device_allocs, 1);
        assert_eq!(c.device_alloc_cache_hits, 1);
    }

    #[test]
    fn realloc_mode_never_hits() {
        let dev = Device::v100();
        dev.set_alloc_mode(AllocMode::Realloc);
        let buf = dev.alloc::<f32>(1000).unwrap();
        drop(buf);
        let _buf2 = dev.alloc::<f32>(1000).unwrap();
        let c = dev.counters();
        assert_eq!(c.device_allocs, 2);
        assert_eq!(c.device_alloc_cache_hits, 0);
    }

    #[test]
    fn caching_is_modeled_cheaper_than_realloc() {
        let run = |mode| {
            let dev = Device::v100();
            dev.set_alloc_mode(mode);
            for _ in 0..100 {
                let b = dev.alloc::<f32>(4096).unwrap();
                drop(b);
            }
            dev.timeline().total_seconds()
        };
        assert!(run(AllocMode::Caching) < run(AllocMode::Realloc));
    }

    #[test]
    fn clone_shares_state() {
        let dev = Device::v100();
        let dev2 = dev.clone();
        dev.synchronize(Phase::Other);
        assert!(dev2.timeline().total_seconds() > 0.0);
    }

    #[test]
    fn reset_timeline_keeps_pool() {
        let dev = Device::v100();
        let b = dev.alloc::<f32>(64).unwrap();
        drop(b);
        dev.reset_timeline();
        assert_eq!(dev.timeline().total_seconds(), 0.0);
        let _b2 = dev.alloc::<f32>(64).unwrap();
        assert_eq!(dev.counters().device_alloc_cache_hits, 1, "pool survived");
    }

    #[test]
    fn metrics_derive_throughputs() {
        let mut tl = Timeline::new();
        let mut c = Counters::new();
        c.dram_read_bytes = 2_000_000_000;
        c.flops = 5_000_000_000;
        tl.charge(Phase::SwarmUpdate, 2.0, c);
        let m = DeviceMetrics::from_timeline(&tl);
        assert!((m.dram_read_gbs - 1.0).abs() < 1e-9);
        assert!((m.gflops - 2.5).abs() < 1e-9);
        assert!((m.elapsed_s - 2.0).abs() < 1e-12);
    }

    #[test]
    fn metrics_on_empty_timeline_are_zero() {
        let m = DeviceMetrics::from_timeline(&Timeline::new());
        assert_eq!(m.gflops, 0.0);
        assert_eq!(m.elapsed_s, 0.0);
    }

    #[test]
    fn planned_launch_fault_fires_once_then_clears() {
        use crate::fault::FaultPlan;
        let dev = Device::v100();
        dev.set_fault_plan(FaultPlan::new().with_transient_launch(2));
        assert!(dev.begin_launch().is_ok(), "launch 1 clean");
        let err = dev.begin_launch().unwrap_err();
        assert_eq!(
            err,
            GpuError::TransientLaunch {
                device: 0,
                launch: 2
            }
        );
        assert!(err.is_transient());
        assert!(dev.begin_launch().is_ok(), "retry (launch 3) clean");
        let stats = dev.fault_stats();
        assert_eq!((stats.launches, stats.injected), (3, 1));
    }

    #[test]
    fn planned_alloc_fault_is_transient_not_oom() {
        use crate::fault::FaultPlan;
        let dev = Device::v100();
        dev.set_fault_plan(FaultPlan::new().with_transient_alloc(1));
        let err = match dev.alloc::<f32>(16) {
            Err(e) => e,
            Ok(_) => panic!("planned alloc fault must fire"),
        };
        assert_eq!(
            err,
            GpuError::TransientAlloc {
                device: 0,
                alloc: 1
            }
        );
        assert!(err.is_transient());
        let buf = dev.alloc::<f32>(16);
        assert!(buf.is_ok(), "retry allocates");
        assert_eq!(dev.bytes_in_use(), 64, "failed alloc reserved nothing");
    }

    #[test]
    fn corrupted_upload_leaves_device_data_intact() {
        use crate::fault::FaultPlan;
        let dev = Device::v100();
        let mut buf = dev.alloc_from_slice(&[1.0f32, 2.0]).unwrap();
        dev.set_fault_plan(FaultPlan::new().with_corrupted_transfer(1));
        let err = buf.upload(&[9.0, 9.0]).unwrap_err();
        assert!(matches!(
            err,
            GpuError::CorruptedTransfer { transfer: 1, .. }
        ));
        assert_eq!(buf.as_slice(), &[1.0, 2.0], "no partial write");
        buf.upload(&[9.0, 9.0]).unwrap();
        assert_eq!(buf.as_slice(), &[9.0, 9.0], "retry lands");
    }

    #[test]
    fn device_loss_is_permanent_across_all_operations() {
        use crate::fault::FaultPlan;
        let dev = Device::with_index(GpuProfile::tesla_v100(), LinkProfile::pcie3_x16(), 3);
        dev.set_fault_plan(FaultPlan::new().with_device_loss_at_launch(1));
        assert_eq!(dev.begin_launch().unwrap_err(), GpuError::DeviceLost(3));
        assert!(dev.is_lost());
        assert_eq!(dev.begin_launch().unwrap_err(), GpuError::DeviceLost(3));
        let err = match dev.alloc::<f32>(4) {
            Err(e) => e,
            Ok(_) => panic!("lost device must not allocate"),
        };
        assert_eq!(err, GpuError::DeviceLost(3));
        assert!(!GpuError::DeviceLost(3).is_transient());
    }

    #[test]
    fn clear_fault_plan_stops_injection() {
        use crate::fault::FaultPlan;
        let dev = Device::v100();
        dev.set_fault_plan(FaultPlan::new().with_transient_launch(1));
        dev.clear_fault_plan();
        assert!(dev.begin_launch().is_ok());
    }

    #[test]
    fn charge_kernel_records_name_geometry_and_metrics() {
        let dev = Device::v100();
        dev.begin_launch().unwrap();
        dev.charge_kernel(&KernelDesc::simple("probe", Phase::Eval, 2, 8, 4, 1000));
        let log = dev.profiler();
        assert_eq!(log.kernels.len(), 1);
        let k = &log.kernels[0];
        assert_eq!(k.name, "probe");
        assert_eq!(k.phase, Phase::Eval);
        assert_eq!(k.ordinal, 1);
        assert_eq!(k.flops, 2000);
        assert_eq!(k.dram_read_bytes, 8000);
        // config = None → one thread per element, 256-wide blocks.
        assert_eq!(k.block, [256, 1, 1]);
        assert_eq!(k.grid, [4, 1, 1]);
        assert!(k.occupancy > 0.0 && k.occupancy <= 1.0);
        assert!(k.bw_fraction >= 0.0 && k.bw_fraction < 1.0);
        assert!(k.duration_s > 0.0);
    }

    #[test]
    fn profiler_counters_match_timeline_counters() {
        let dev = Device::v100();
        let b = dev.alloc::<f32>(256).unwrap();
        drop(b);
        let mut b2 = dev.alloc::<f32>(256).unwrap();
        b2.upload(&[0.5f32; 256]).unwrap();
        dev.begin_launch().unwrap();
        dev.charge_kernel(&KernelDesc::simple("k", Phase::SwarmUpdate, 1, 4, 4, 256));
        let _ = b2.download();
        let from_records = dev.profiler().total_counters();
        let from_timeline = dev.counters();
        assert_eq!(from_records, from_timeline);
    }

    #[test]
    fn marked_redundant_launch_charges_recovery_not_natural_phase() {
        let dev = Device::v100();
        dev.mark_redundant(1, 0, 0);
        dev.begin_launch().unwrap();
        dev.charge_kernel(&KernelDesc::simple("redo", Phase::Eval, 1, 4, 4, 64));
        // The flag covers every charge until the next gate, then clears.
        dev.begin_launch().unwrap();
        dev.charge_kernel(&KernelDesc::simple("fresh", Phase::Eval, 1, 4, 4, 64));
        let tl = dev.timeline();
        assert_eq!(tl.phase_counters(Phase::Recovery).kernel_launches, 1);
        assert_eq!(tl.phase_counters(Phase::Eval).kernel_launches, 1);
        let log = dev.profiler();
        assert_eq!(log.kernels[0].phase, Phase::Recovery);
        assert_eq!(log.kernels[1].phase, Phase::Eval);
    }

    #[test]
    fn marked_redundant_alloc_and_upload_charge_recovery() {
        let dev = Device::v100();
        dev.mark_redundant(0, 1, 1);
        let mut b = dev.alloc::<f32>(64).unwrap();
        b.upload(&[1.0f32; 64]).unwrap();
        let mut b2 = dev.alloc::<f32>(64).unwrap();
        b2.upload(&[2.0f32; 64]).unwrap();
        let tl = dev.timeline();
        let rec = tl.phase_counters(Phase::Recovery);
        assert_eq!(rec.device_allocs, 1);
        assert_eq!(rec.transfers, 1);
        let other = tl.phase_counters(Phase::Other);
        assert_eq!(other.device_allocs, 1);
        assert_eq!(other.transfers, 1);
    }

    #[test]
    fn persistent_region_charges_one_launch_and_exact_counters() {
        let run = |persistent: bool| {
            let dev = Device::v100();
            if persistent {
                dev.begin_persistent("persistent_probe", Phase::SwarmUpdate, 256)
                    .unwrap();
            }
            for _ in 0..10 {
                dev.begin_launch().unwrap();
                dev.charge_kernel(&KernelDesc::simple("k", Phase::SwarmUpdate, 2, 8, 4, 256));
                dev.synchronize(Phase::SwarmUpdate);
            }
            if persistent {
                let stats = dev.end_persistent();
                assert_eq!(stats.inner_passes, 10);
                assert_eq!(stats.grid_syncs, 10);
            }
            (
                dev.counters(),
                dev.profiler(),
                dev.timeline().total_seconds(),
            )
        };
        let (base_c, base_log, base_t) = run(false);
        let (pers_c, pers_log, pers_t) = run(true);
        assert_eq!(base_c.kernel_launches, 10);
        assert_eq!(pers_c.kernel_launches, 1, "one region launch per slice");
        // Every non-launch counter is byte-exact between the two modes.
        let neutral = |mut c: Counters| {
            c.kernel_launches = 0;
            c
        };
        assert_eq!(neutral(base_c), neutral(pers_c));
        // Profiler totals agree with the timeline in both modes.
        assert_eq!(base_log.total_counters(), base_c);
        assert_eq!(pers_log.total_counters(), pers_c);
        // The device-resident run is strictly cheaper: per-pass launch
        // overhead is gone and syncs are grid-scope.
        assert!(pers_t < base_t);
        // Inner passes record zero launches; the region record carries one.
        assert_eq!(pers_log.kernels[0].name, "persistent_probe");
        assert_eq!(pers_log.kernels[0].launches, 1);
        assert!(pers_log.kernels[1..].iter().all(|k| k.launches == 0));
    }

    #[test]
    fn persistent_region_keeps_fault_ordinals_aligned() {
        use crate::fault::FaultPlan;
        let dev = Device::v100();
        dev.set_fault_plan(FaultPlan::new().with_transient_launch(3));
        dev.begin_persistent("r", Phase::SwarmUpdate, 64).unwrap();
        assert!(dev.begin_launch().is_ok(), "ordinal 1");
        assert!(dev.begin_launch().is_ok(), "ordinal 2");
        let err = dev.begin_launch().unwrap_err();
        assert!(err.is_transient(), "region open consumed no ordinal: {err}");
        dev.end_persistent();
    }

    #[test]
    fn persistent_region_rejects_nesting_and_over_residency() {
        let dev = Device::v100();
        let max = dev.profile().max_resident_threads();
        assert!(matches!(
            dev.begin_persistent("r", Phase::Other, max + 1),
            Err(GpuError::InvalidLaunch(_))
        ));
        assert!(matches!(
            dev.begin_persistent("r", Phase::Other, 0),
            Err(GpuError::InvalidLaunch(_))
        ));
        dev.begin_persistent("r", Phase::Other, max).unwrap();
        assert!(dev.in_persistent());
        assert!(matches!(
            dev.begin_persistent("r2", Phase::Other, 1),
            Err(GpuError::InvalidLaunch(_))
        ));
        dev.end_persistent();
        assert!(!dev.in_persistent());
        // Closing with nothing open is a harmless no-op.
        assert_eq!(dev.end_persistent(), PersistentStats::default());
    }

    #[test]
    fn lost_device_refuses_new_region_but_closes_cleanly() {
        use crate::fault::FaultPlan;
        let dev = Device::v100();
        dev.begin_persistent("r", Phase::Other, 64).unwrap();
        dev.set_fault_plan(FaultPlan::new().with_device_loss_at_launch(1));
        let _ = dev.begin_launch();
        assert!(dev.is_lost());
        let stats = dev.end_persistent();
        assert_eq!(stats.inner_passes, 0);
        assert!(matches!(
            dev.begin_persistent("r", Phase::Other, 64),
            Err(GpuError::DeviceLost(_))
        ));
    }

    #[test]
    fn reset_timeline_clears_profiler_too() {
        let dev = Device::v100();
        dev.begin_launch().unwrap();
        dev.charge_kernel(&KernelDesc::simple("k", Phase::Eval, 1, 4, 4, 64));
        assert_eq!(dev.profiler().kernels.len(), 1);
        dev.reset_timeline();
        assert!(dev.profiler().is_empty());
        assert_eq!(dev.timeline().total_seconds(), 0.0);
    }
}
