//! Fleet-level device health tracking: rolling fault counts, a
//! circuit-breaker quarantine and modeled-time cool-down re-admission.
//!
//! A [`FleetHealth`] tracker watches every device of a fleet and classifies
//! each one as [`Healthy`](HealthState::Healthy),
//! [`Degraded`](HealthState::Degraded) or
//! [`Quarantined`](HealthState::Quarantined) from its recent fault history.
//! The tracker is driven entirely by *modeled* time and by the devices' own
//! deterministic fault counters ([`FaultStats`](crate::FaultStats)), so a
//! replayed trace classifies identically every time:
//!
//! * each call to [`FleetHealth::observe`] polls every device's injected-
//!   fault counter and records one fault event per newly injected fault,
//!   stamped with the group's current modeled clock;
//! * a device whose fault count inside the rolling
//!   [`HealthPolicy::window_s`] reaches [`HealthPolicy::degraded_after`] is
//!   **Degraded** — placement de-prefers it but may still use it;
//! * reaching [`HealthPolicy::quarantine_after`] trips the circuit breaker:
//!   the device is **Quarantined** (no new placements) until
//!   [`HealthPolicy::cooldown_s`] modeled seconds pass, after which its
//!   fault window is cleared and it is re-admitted;
//! * a permanently lost device is quarantined forever.
//!
//! [`LeasePool`](crate::lease::LeasePool) consults a tracker (when one is
//! attached with [`LeasePool::set_health`](crate::lease::LeasePool::set_health))
//! so lease placement avoids sick devices, and
//! [`DeviceGroup::eligible_devices`](crate::DeviceGroup::eligible_devices)
//! exposes the same filter for callers placing work by hand.
//!
//! ```
//! use gpu_sim::{DeviceGroup, FaultPlan, FleetHealth, HealthPolicy, HealthState};
//!
//! let group = DeviceGroup::v100s(2);
//! let health = FleetHealth::new(group.len(), HealthPolicy::default());
//! health.observe(&group);
//! assert_eq!(health.state(0), HealthState::Healthy);
//!
//! // Lose device 0: the next observation quarantines it permanently.
//! group.device(0).unwrap().set_fault_plan(FaultPlan::new().with_device_loss_at_launch(1));
//! let _ = group.device(0).unwrap().begin_launch();
//! health.observe(&group);
//! assert_eq!(health.state(0), HealthState::Quarantined);
//! assert_eq!(health.state(1), HealthState::Healthy);
//! ```

use crate::multi::DeviceGroup;
use crate::sync::Mutex;
use std::sync::Arc;

/// A device's current standing with the fleet-health circuit breaker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HealthState {
    /// No recent faults: preferred for placement.
    Healthy,
    /// Faulting but below the breaker threshold: placeable, but only after
    /// every healthy device is considered.
    Degraded,
    /// Breaker tripped (or device permanently lost): receives no new
    /// placements until the cool-down re-admits it.
    Quarantined,
}

/// Thresholds for the fleet-health circuit breaker. All times are modeled
/// seconds — host wall-clock never enters the classification.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HealthPolicy {
    /// Rolling window over which fault events are counted.
    pub window_s: f64,
    /// Faults inside the window that mark a device [`HealthState::Degraded`].
    pub degraded_after: u64,
    /// Faults inside the window that trip the breaker
    /// ([`HealthState::Quarantined`]).
    pub quarantine_after: u64,
    /// Modeled seconds a tripped device stays quarantined before its fault
    /// window is cleared and it is re-admitted.
    pub cooldown_s: f64,
}

impl Default for HealthPolicy {
    /// Conservative defaults sized for modeled time (kernels cost
    /// micro-to-milliseconds): degrade on the 2nd fault inside a 10 ms
    /// window, quarantine on the 5th, re-admit after 5 ms of cool-down.
    fn default() -> Self {
        HealthPolicy {
            window_s: 10e-3,
            degraded_after: 2,
            quarantine_after: 5,
            cooldown_s: 5e-3,
        }
    }
}

/// Per-device bookkeeping behind the shared tracker.
#[derive(Debug, Default, Clone)]
struct DeviceHealth {
    /// Modeled timestamps of recent fault events (pruned to the window).
    events: Vec<f64>,
    /// Injected-fault counter value at the last observation, for deltas.
    seen_injected: u64,
    /// Permanently lost (never re-admitted).
    lost: bool,
    /// Modeled time the current quarantine lifts, when tripped.
    quarantined_until: Option<f64>,
    /// Times the breaker has tripped over the device's lifetime.
    trips: u64,
}

struct FleetState {
    devices: Vec<DeviceHealth>,
    policy: HealthPolicy,
    /// Modeled clock at the latest observation.
    now: f64,
}

/// Shared fleet-health tracker. Cloning yields another handle to the same
/// state, so a scheduler and its lease pool observe one truth.
#[derive(Clone)]
pub struct FleetHealth {
    shared: Arc<Mutex<FleetState>>,
}

impl FleetHealth {
    /// A tracker for `n_devices` devices, all initially healthy.
    pub fn new(n_devices: usize, policy: HealthPolicy) -> Self {
        FleetHealth {
            shared: Arc::new(Mutex::new(FleetState {
                devices: vec![DeviceHealth::default(); n_devices],
                policy,
                now: 0.0,
            })),
        }
    }

    /// The policy this tracker classifies with.
    pub fn policy(&self) -> HealthPolicy {
        self.shared.lock().policy
    }

    /// Poll every device of `group`: advance the modeled clock to the
    /// group's elapsed time, record one fault event per fault injected
    /// since the last observation, mark lost devices, and lift expired
    /// quarantines. Deterministic for a replayed trace.
    pub fn observe(&self, group: &DeviceGroup) {
        let mut st = self.shared.lock();
        let now = group.elapsed_seconds().max(st.now);
        st.now = now;
        st.refresh_all(); // lift expired quarantines before new events land
        for (i, dev) in group.iter().enumerate() {
            if i >= st.devices.len() {
                break;
            }
            let stats = dev.fault_stats();
            let fresh = stats.injected.saturating_sub(st.devices[i].seen_injected);
            let dh = &mut st.devices[i];
            dh.seen_injected = stats.injected;
            dh.lost |= stats.lost;
            for _ in 0..fresh {
                dh.events.push(now);
            }
        }
        st.refresh_all();
    }

    /// Record one fault event against device `i` at modeled time `now_s`,
    /// bypassing the device counters. For callers (and tests) that learn of
    /// faults out of band.
    pub fn record_fault(&self, i: usize, now_s: f64) {
        let mut st = self.shared.lock();
        st.now = st.now.max(now_s);
        st.refresh_all(); // lift expired quarantines before the event lands
        if let Some(dh) = st.devices.get_mut(i) {
            dh.events.push(now_s);
        }
        st.refresh_all();
    }

    /// Device `i`'s state as of the latest observation. Out-of-range
    /// indices report [`HealthState::Quarantined`] — an unknown device is
    /// never placeable.
    pub fn state(&self, i: usize) -> HealthState {
        let st = self.shared.lock();
        match st.devices.get(i) {
            Some(dh) => st.classify(dh),
            None => HealthState::Quarantined,
        }
    }

    /// Whether placement may use device `i` (not quarantined).
    pub fn allows(&self, i: usize) -> bool {
        self.state(i) != HealthState::Quarantined
    }

    /// Fault events currently inside device `i`'s rolling window.
    pub fn fault_count(&self, i: usize) -> usize {
        let st = self.shared.lock();
        st.devices.get(i).map_or(0, |d| d.events.len())
    }

    /// Times device `i`'s circuit breaker has tripped.
    pub fn trips(&self, i: usize) -> u64 {
        let st = self.shared.lock();
        st.devices.get(i).map_or(0, |d| d.trips)
    }

    /// Modeled clock at the latest observation.
    pub fn now(&self) -> f64 {
        self.shared.lock().now
    }
}

impl std::fmt::Debug for FleetHealth {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let st = self.shared.lock();
        let states: Vec<HealthState> = st.devices.iter().map(|d| st.classify(d)).collect();
        f.debug_struct("FleetHealth")
            .field("now", &st.now)
            .field("states", &states)
            .finish()
    }
}

impl FleetState {
    /// Prune windows, trip breakers and lift expired quarantines for every
    /// device, against the current clock.
    fn refresh_all(&mut self) {
        let (now, policy) = (self.now, self.policy);
        for dh in &mut self.devices {
            if dh.lost {
                continue;
            }
            if let Some(until) = dh.quarantined_until {
                if now >= until {
                    // Cool-down served: clear the window so the device
                    // re-enters with a clean slate.
                    dh.quarantined_until = None;
                    dh.events.clear();
                } else {
                    continue;
                }
            }
            dh.events.retain(|&t| now - t <= policy.window_s);
            if (dh.events.len() as u64) >= policy.quarantine_after {
                dh.quarantined_until = Some(now + policy.cooldown_s);
                dh.trips += 1;
            }
        }
    }

    fn classify(&self, dh: &DeviceHealth) -> HealthState {
        if dh.lost || dh.quarantined_until.is_some() {
            return HealthState::Quarantined;
        }
        if (dh.events.len() as u64) >= self.policy.degraded_after {
            HealthState::Degraded
        } else {
            HealthState::Healthy
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FaultPlan;

    fn policy() -> HealthPolicy {
        HealthPolicy {
            window_s: 1.0,
            degraded_after: 2,
            quarantine_after: 3,
            cooldown_s: 0.5,
        }
    }

    #[test]
    fn fault_bursts_walk_the_state_ladder() {
        let h = FleetHealth::new(1, policy());
        assert_eq!(h.state(0), HealthState::Healthy);
        h.record_fault(0, 0.1);
        assert_eq!(h.state(0), HealthState::Healthy);
        h.record_fault(0, 0.2);
        assert_eq!(h.state(0), HealthState::Degraded);
        h.record_fault(0, 0.3);
        assert_eq!(h.state(0), HealthState::Quarantined);
        assert_eq!(h.trips(0), 1);
    }

    #[test]
    fn cooldown_readmits_with_a_clean_window() {
        let h = FleetHealth::new(1, policy());
        for t in [0.1, 0.2, 0.3] {
            h.record_fault(0, t);
        }
        assert_eq!(h.state(0), HealthState::Quarantined);
        // Still inside the cool-down (0.3 + 0.5 = 0.8).
        h.record_fault(0, 0.7); // events during quarantine don't extend it
        assert_eq!(h.state(0), HealthState::Quarantined);
        // Past the cool-down: the window clears and the device re-enters.
        let g = DeviceGroup::v100s(1);
        h.observe(&g); // group clock is 0 — clock never goes backwards
        h.record_fault(0, 0.9);
        assert_eq!(h.state(0), HealthState::Healthy);
        assert_eq!(h.fault_count(0), 1);
    }

    #[test]
    fn old_faults_age_out_of_the_window() {
        let h = FleetHealth::new(1, policy());
        h.record_fault(0, 0.0);
        h.record_fault(0, 0.1);
        assert_eq!(h.state(0), HealthState::Degraded);
        // Advance the clock far past the window via a manual event.
        h.record_fault(0, 5.0);
        assert_eq!(h.fault_count(0), 1, "stale events pruned");
        assert_eq!(h.state(0), HealthState::Healthy);
    }

    #[test]
    fn observe_counts_injected_faults_and_loss() {
        let g = DeviceGroup::v100s(2);
        let h = FleetHealth::new(2, policy());
        let d0 = g.device(0).unwrap();
        d0.set_fault_plan(
            FaultPlan::new()
                .with_transient_launch(1)
                .with_transient_launch(2),
        );
        let _ = d0.begin_launch();
        let _ = d0.begin_launch();
        h.observe(&g);
        assert_eq!(h.fault_count(0), 2);
        assert_eq!(h.state(0), HealthState::Degraded);
        assert_eq!(h.state(1), HealthState::Healthy);
        // Re-observing without new faults records nothing new.
        h.observe(&g);
        assert_eq!(h.fault_count(0), 2);

        let d1 = g.device(1).unwrap();
        d1.set_fault_plan(FaultPlan::new().with_device_loss_at_launch(1));
        let _ = d1.begin_launch();
        h.observe(&g);
        assert_eq!(h.state(1), HealthState::Quarantined);
        assert!(!h.allows(1));
        // Loss is permanent: no cool-down ever lifts it.
        h.record_fault(0, 1e9);
        assert_eq!(h.state(1), HealthState::Quarantined);
    }

    #[test]
    fn unknown_devices_are_never_placeable() {
        let h = FleetHealth::new(1, policy());
        assert_eq!(h.state(7), HealthState::Quarantined);
        assert!(!h.allows(7));
    }

    #[test]
    fn shared_handles_see_one_truth() {
        let a = FleetHealth::new(1, policy());
        let b = a.clone();
        for t in [0.1, 0.2, 0.3] {
            a.record_fault(0, t);
        }
        assert_eq!(b.state(0), HealthState::Quarantined);
        assert_eq!(b.trips(0), 1);
    }
}
