//! Tensor-core emulation (paper §3.5, "Supporting tensor cores").
//!
//! Volta tensor cores execute warp-level 16×16 matrix multiply-accumulate
//! on f16 inputs with f32 accumulation. The paper maps the element-wise
//! swarm update onto them by treating the matrices as warp-level fragments:
//! operands are loaded into fragments (rounding through f16), the
//! element-wise combination runs fragment-by-fragment, and results are
//! copied back to global memory after tensor-core synchronization.
//!
//! The simulator reproduces both the *numerics* (inputs really are rounded
//! through IEEE binary16, so results differ from the f32 path exactly the
//! way they would on hardware) and the *cost* (the work is charged at
//! tensor-core throughput).

use crate::device::Device;
use crate::error::GpuError;
use crate::launch::{KernelCost, KernelDesc, LaunchConfig};
use perf_model::{MemoryPattern, Phase};
use rayon::prelude::*;

/// Edge length of a tensor-core fragment (16×16 on Volta).
pub const FRAGMENT_DIM: usize = 16;

/// Number of elements in one fragment.
pub const FRAGMENT_ELEMS: usize = FRAGMENT_DIM * FRAGMENT_DIM;

/// Convert an `f32` to IEEE 754 binary16 bits, round-to-nearest-even.
pub fn f32_to_f16_bits(x: f32) -> u16 {
    let bits = x.to_bits();
    let sign = ((bits >> 16) & 0x8000) as u16;
    let exp = ((bits >> 23) & 0xff) as i32;
    let mant = bits & 0x007f_ffff;

    if exp == 0xff {
        // Inf / NaN: preserve NaN-ness with a quiet mantissa bit.
        return sign | 0x7c00 | if mant != 0 { 0x0200 } else { 0 };
    }
    // Re-bias from 127 to 15.
    let unbiased = exp - 127;
    if unbiased > 15 {
        return sign | 0x7c00; // overflow → ±inf
    }
    if unbiased >= -14 {
        // Normal f16. Keep 10 mantissa bits, round to nearest even.
        let mant16 = mant >> 13;
        let rest = mant & 0x1fff;
        let half = 0x1000u32;
        let exp16 = ((unbiased + 15) as u32) << 10;
        let mut out = sign as u32 | exp16 | mant16;
        if rest > half || (rest == half && (mant16 & 1) == 1) {
            out += 1; // may carry into the exponent — that is correct
        }
        return out as u16;
    }
    if unbiased >= -24 {
        // Subnormal f16: value = m16 · 2⁻²⁴ with m16 = round(f · 2^(e+24)),
        // i.e. drop k = -e-1 bits of the 24-bit significand (k ∈ [14, 23]).
        let full_mant = mant | 0x0080_0000; // implicit leading 1
        let k = (-unbiased - 1) as u32;
        let mant16 = full_mant >> k;
        let rest = full_mant & ((1u32 << k) - 1);
        let half = 1u32 << (k - 1);
        let mut out = sign as u32 | mant16;
        if rest > half || (rest == half && (mant16 & 1) == 1) {
            out += 1;
        }
        return out as u16;
    }
    sign // underflow → ±0
}

/// Convert IEEE 754 binary16 bits to `f32` (exact).
pub fn f16_bits_to_f32(h: u16) -> f32 {
    let sign = ((h & 0x8000) as u32) << 16;
    let exp = ((h >> 10) & 0x1f) as u32;
    let mant = (h & 0x03ff) as u32;
    let bits = match (exp, mant) {
        (0, 0) => sign,
        (0, m) => {
            // Subnormal: value = m · 2⁻²⁴. Normalize: with p the position of
            // m's top bit, value = 2^(p-24) · (1 + frac).
            let p = 31 - m.leading_zeros();
            let e = p + 127 - 24;
            let frac = (m << (23 - p)) & 0x007f_ffff;
            sign | (e << 23) | frac
        }
        (0x1f, 0) => sign | 0x7f80_0000,
        (0x1f, m) => sign | 0x7f80_0000 | (m << 13) | 0x0040_0000,
        (e, m) => sign | ((e + 127 - 15) << 23) | (m << 13),
    };
    f32::from_bits(bits)
}

/// Round an `f32` through binary16 and back — the precision a value has
/// after being loaded into a tensor-core input fragment.
pub fn through_f16(x: f32) -> f32 {
    f16_bits_to_f32(f32_to_f16_bits(x))
}

/// A 16×16 warp-level matrix fragment with f32 storage and f16 input
/// semantics, mirroring `nvcuda::wmma::fragment`.
#[derive(Clone, Debug, PartialEq)]
pub struct Fragment {
    data: [f32; FRAGMENT_ELEMS],
}

impl Default for Fragment {
    fn default() -> Self {
        Fragment {
            data: [0.0; FRAGMENT_ELEMS],
        }
    }
}

impl Fragment {
    /// Zero-filled accumulator fragment (`wmma::fill_fragment(frag, 0)`).
    pub fn zeroed() -> Self {
        Self::default()
    }

    /// Load a fragment from a row-major matrix slice with the given leading
    /// dimension, rounding every element through f16
    /// (`wmma::load_matrix_sync` on a `half` operand). Rows/cols outside
    /// the matrix load as zero, which is how ragged edges are padded.
    pub fn load(
        src: &[f32],
        rows: usize,
        cols: usize,
        row0: usize,
        col0: usize,
        ld: usize,
    ) -> Self {
        let mut f = Fragment::zeroed();
        for r in 0..FRAGMENT_DIM {
            for c in 0..FRAGMENT_DIM {
                let (gr, gc) = (row0 + r, col0 + c);
                if gr < rows && gc < cols {
                    f.data[r * FRAGMENT_DIM + c] = through_f16(src[gr * ld + gc]);
                }
            }
        }
        f
    }

    /// Store the fragment into a row-major matrix slice
    /// (`wmma::store_matrix_sync`); out-of-range elements are dropped.
    pub fn store(
        &self,
        dst: &mut [f32],
        rows: usize,
        cols: usize,
        row0: usize,
        col0: usize,
        ld: usize,
    ) {
        for r in 0..FRAGMENT_DIM {
            for c in 0..FRAGMENT_DIM {
                let (gr, gc) = (row0 + r, col0 + c);
                if gr < rows && gc < cols {
                    dst[gr * ld + gc] = self.data[r * FRAGMENT_DIM + c];
                }
            }
        }
    }

    /// Element access (row-major within the fragment).
    pub fn get(&self, r: usize, c: usize) -> f32 {
        self.data[r * FRAGMENT_DIM + c]
    }

    /// Mutable element access.
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        self.data[r * FRAGMENT_DIM + c] = v;
    }

    /// `d = a ⊙ b · scale + c` element-wise with f32 accumulation — the
    /// Hadamard-product MMA the swarm update maps onto tensor cores.
    pub fn hadamard_fma(a: &Fragment, b: &Fragment, c: &Fragment, scale: f32) -> Fragment {
        let mut d = Fragment::zeroed();
        for i in 0..FRAGMENT_ELEMS {
            d.data[i] = a.data[i] * b.data[i] * scale + c.data[i];
        }
        d
    }

    /// Classic `d = a × b + c` matrix multiply-accumulate
    /// (`wmma::mma_sync`), f32 accumulation.
    pub fn mma(a: &Fragment, b: &Fragment, c: &Fragment) -> Fragment {
        let mut d = c.clone();
        for r in 0..FRAGMENT_DIM {
            for k in 0..FRAGMENT_DIM {
                let av = a.data[r * FRAGMENT_DIM + k];
                if av == 0.0 {
                    continue;
                }
                for cc in 0..FRAGMENT_DIM {
                    d.data[r * FRAGMENT_DIM + cc] += av * b.data[k * FRAGMENT_DIM + cc];
                }
            }
        }
        d
    }
}

impl Device {
    /// Tensor-core element-wise update: `out[i] = f(i, rounded_inputs, old)`
    /// where every input value and the old output value have been rounded
    /// through f16 (fragment-load semantics) and the work is charged at
    /// tensor-core throughput.
    ///
    /// `f` receives the global element index, a slice of the f16-rounded
    /// input values at that element (caller order) and the f16-rounded old
    /// output value; it must return the new f32 value.
    pub fn launch_tensor_elementwise<F>(
        &self,
        name: &'static str,
        phase: Phase,
        tensor_flops_per_elem: u64,
        inputs: &[&[f32]],
        out: &mut [f32],
        f: F,
    ) -> Result<(), GpuError>
    where
        F: Fn(usize, &[f32], f32) -> f32 + Sync,
    {
        self.begin_launch()?;
        for input in inputs {
            if input.len() != out.len() {
                return Err(GpuError::ShapeMismatch {
                    expected: out.len(),
                    actual: input.len(),
                    what: "launch_tensor_elementwise",
                });
            }
        }
        let elems = out.len() as u64;
        let profile = self.profile();
        let per_elem_read = (inputs.len() as u64 + 1) * 4;
        let desc = KernelDesc {
            name,
            phase,
            cost: KernelCost {
                flops: 0,
                tensor_flops: tensor_flops_per_elem,
                dram_read: per_elem_read,
                dram_write: 4,
                // Fragments stage through shared memory/register files.
                shared: per_elem_read + 4,
            },
            elems,
            threads: elems,
            config: Some(LaunchConfig::resource_aware(&profile, elems)),
            pattern: MemoryPattern::Coalesced,
        };
        self.charge_kernel(&desc);

        let n_inputs = inputs.len();
        out.par_chunks_mut(FRAGMENT_ELEMS)
            .enumerate()
            .for_each(|(frag_idx, out_frag)| {
                let start = frag_idx * FRAGMENT_ELEMS;
                let mut vals = vec![0.0f32; n_inputs];
                for (local, slot) in out_frag.iter_mut().enumerate() {
                    let g = start + local;
                    for (k, input) in inputs.iter().enumerate() {
                        vals[k] = through_f16(input[g]);
                    }
                    let old = through_f16(*slot);
                    *slot = f(g, &vals, old);
                }
            });
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f16_roundtrip_exact_values() {
        for &v in &[0.0f32, 1.0, -1.0, 0.5, 2.0, 65504.0, -65504.0, 0.099975586] {
            assert_eq!(through_f16(v), v, "{v} should be exactly representable");
        }
    }

    #[test]
    fn f16_handles_specials() {
        assert!(through_f16(f32::NAN).is_nan());
        assert_eq!(through_f16(f32::INFINITY), f32::INFINITY);
        assert_eq!(through_f16(f32::NEG_INFINITY), f32::NEG_INFINITY);
        assert_eq!(
            through_f16(1e10),
            f32::INFINITY,
            "overflow saturates to inf"
        );
        assert_eq!(through_f16(1e-30), 0.0, "deep underflow flushes to zero");
        assert_eq!(through_f16(-0.0).to_bits(), (-0.0f32).to_bits());
    }

    #[test]
    fn f16_rounding_error_is_bounded() {
        // Relative error of binary16 rounding is at most 2^-11 for normals.
        let mut x = 0.0001f32;
        while x < 60000.0 {
            let r = through_f16(x);
            let rel = ((r - x) / x).abs();
            assert!(rel <= 1.0 / 2048.0 + 1e-7, "x={x}, r={r}, rel={rel}");
            x *= 1.7;
        }
    }

    #[test]
    fn f16_subnormals_roundtrip() {
        // Smallest positive f16 subnormal is 2^-24.
        let tiny = 2.0f32.powi(-24);
        assert_eq!(through_f16(tiny), tiny);
        assert_eq!(through_f16(tiny * 3.0), tiny * 3.0);
        // Smallest normal.
        let min_norm = 2.0f32.powi(-14);
        assert_eq!(through_f16(min_norm), min_norm);
    }

    #[test]
    fn fragment_load_store_roundtrip_with_padding() {
        let rows = 20;
        let cols = 20;
        let src: Vec<f32> = (0..rows * cols).map(|i| (i % 7) as f32).collect();
        let frag = Fragment::load(&src, rows, cols, 16, 16, cols);
        // Only a 4×4 corner is in range; the rest must be zero padding.
        assert_eq!(frag.get(0, 0), src[16 * cols + 16]);
        assert_eq!(frag.get(4, 0), 0.0);
        assert_eq!(frag.get(0, 4), 0.0);
        let mut dst = vec![0.0f32; rows * cols];
        frag.store(&mut dst, rows, cols, 16, 16, cols);
        assert_eq!(dst[17 * cols + 18], src[17 * cols + 18]);
        assert_eq!(dst[0], 0.0, "out-of-fragment region untouched");
    }

    #[test]
    fn hadamard_fma_is_elementwise() {
        let mut a = Fragment::zeroed();
        let mut b = Fragment::zeroed();
        let mut c = Fragment::zeroed();
        a.set(1, 2, 3.0);
        b.set(1, 2, 4.0);
        c.set(1, 2, 1.0);
        c.set(0, 0, 5.0);
        let d = Fragment::hadamard_fma(&a, &b, &c, 0.5);
        assert_eq!(d.get(1, 2), 3.0 * 4.0 * 0.5 + 1.0);
        assert_eq!(d.get(0, 0), 5.0);
    }

    #[test]
    fn mma_matches_reference_matmul() {
        let mut a = Fragment::zeroed();
        let mut b = Fragment::zeroed();
        // a = row-index matrix on the diagonal, b = dense small values.
        for i in 0..FRAGMENT_DIM {
            a.set(i, i, (i + 1) as f32);
            for j in 0..FRAGMENT_DIM {
                b.set(i, j, (i + j) as f32);
            }
        }
        let d = Fragment::mma(&a, &b, &Fragment::zeroed());
        // d[r][c] = (r+1) * b[r][c]
        for r in 0..FRAGMENT_DIM {
            for c in 0..FRAGMENT_DIM {
                assert_eq!(d.get(r, c), (r + 1) as f32 * (r + c) as f32);
            }
        }
    }

    #[test]
    fn tensor_elementwise_applies_f16_rounding() {
        let dev = Device::v100();
        let x = vec![0.1f32; 64]; // 0.1 is inexact in f16
        let mut out = vec![0.0f32; 64];
        dev.launch_tensor_elementwise("t", Phase::SwarmUpdate, 1, &[&x], &mut out, |_, ins, _| {
            ins[0]
        })
        .unwrap();
        assert_ne!(out[0], 0.1, "value must show f16 rounding");
        assert!((out[0] - 0.1).abs() < 1e-4);
        let c = dev.counters();
        assert_eq!(c.tensor_flops, 64);
        assert_eq!(c.flops, 0);
    }

    #[test]
    fn tensor_elementwise_rejects_shape_mismatch() {
        let dev = Device::v100();
        let x = vec![0.0f32; 3];
        let mut out = vec![0.0f32; 4];
        assert!(dev
            .launch_tensor_elementwise("t", Phase::Other, 1, &[&x], &mut out, |_, _, _| 0.0)
            .is_err());
    }
}
