//! Shared-memory tiled element-wise kernels (paper §3.5, "Supporting shared
//! memory").
//!
//! The paper segments the swarm matrices into `(TILE_SIZE, TILE_SIZE)`
//! sub-matrices, stages them in shared memory, performs the element-wise
//! operation there and writes results back to global memory. The simulator
//! reproduces that pipeline faithfully: input tiles (and the output tile's
//! previous contents) are *really copied* into block-local scratch, the
//! user's per-element function reads only the staged copies, and the launch
//! is charged shared-memory traffic on top of the unavoidable global
//! read/write.

use crate::device::Device;
use crate::error::GpuError;
use crate::launch::{KernelCost, KernelDesc, LaunchConfig};
use perf_model::{MemoryPattern, Phase};
use rayon::prelude::*;

/// Default tile edge used by the shared-memory swarm update; a 32×32 f32
/// tile is 4 KiB, letting several blocks stage multiple operand tiles per SM.
pub const TILE_SIZE: usize = 32;

/// Staged view of one tile, handed to the per-element function.
pub struct TileCtx<'a> {
    /// Previous contents of the output tile (staged copy).
    pub out_old: &'a [f32],
    /// Staged copies of each input tile, in caller order.
    pub inputs: &'a [Vec<f32>],
    /// First global element index of this tile.
    pub tile_start: usize,
}

impl Device {
    /// Tiled element-wise update through shared memory:
    /// `out[g] = f(g, local, ctx)` where `g = ctx.tile_start + local`.
    ///
    /// All `inputs` must have the same length as `out`. `tile_elems` is the
    /// flat tile size (`TILE_SIZE × TILE_SIZE` for the paper's square
    /// tiles); the staged working set must fit the device's shared memory.
    #[allow(clippy::too_many_arguments)]
    pub fn launch_tiled<F>(
        &self,
        name: &'static str,
        phase: Phase,
        flops_per_elem: u64,
        tile_elems: usize,
        inputs: &[&[f32]],
        out: &mut [f32],
        f: F,
    ) -> Result<(), GpuError>
    where
        F: Fn(usize, usize, &TileCtx<'_>) -> f32 + Sync,
    {
        self.begin_launch()?;
        if tile_elems == 0 {
            return Err(GpuError::InvalidLaunch("zero tile size".into()));
        }
        for (k, input) in inputs.iter().enumerate() {
            if input.len() != out.len() {
                return Err(GpuError::ShapeMismatch {
                    expected: out.len(),
                    actual: input.len(),
                    what: if k == 0 {
                        "launch_tiled input 0"
                    } else {
                        "launch_tiled input"
                    },
                });
            }
        }
        let staged_bytes = (inputs.len() + 1) * tile_elems * 4;
        let profile = self.profile();
        if staged_bytes > profile.shared_mem_per_sm {
            return Err(GpuError::InvalidLaunch(format!(
                "tile working set {staged_bytes} B exceeds shared memory {} B",
                profile.shared_mem_per_sm
            )));
        }

        let elems = out.len() as u64;
        // Per element: read each input + the old output from DRAM once,
        // write the result once; every staged byte crosses shared memory
        // twice (store + load).
        let per_elem_read = (inputs.len() as u64 + 1) * 4;
        let desc = KernelDesc {
            name,
            phase,
            cost: KernelCost {
                flops: flops_per_elem,
                tensor_flops: 0,
                dram_read: per_elem_read,
                dram_write: 4,
                shared: 2 * (per_elem_read + 4),
            },
            elems,
            threads: elems,
            config: Some(LaunchConfig::resource_aware(&profile, elems)),
            pattern: MemoryPattern::Coalesced,
        };
        self.charge_kernel(&desc);

        out.par_chunks_mut(tile_elems)
            .enumerate()
            .for_each(|(tile_idx, out_tile)| {
                let tile_start = tile_idx * tile_elems;
                let len = out_tile.len();
                // Stage: global → shared (real copies).
                let out_old = out_tile.to_vec();
                let staged: Vec<Vec<f32>> = inputs
                    .iter()
                    .map(|input| input[tile_start..tile_start + len].to_vec())
                    .collect();
                let ctx = TileCtx {
                    out_old: &out_old,
                    inputs: &staged,
                    tile_start,
                };
                // Compute within the tile; write back: shared → global.
                for (local, slot) in out_tile.iter_mut().enumerate() {
                    *slot = f(tile_start + local, local, &ctx);
                }
            });
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiled_update_matches_flat_computation() {
        let dev = Device::v100();
        let n = 1000; // deliberately not a multiple of the tile size
        let a: Vec<f32> = (0..n).map(|i| i as f32).collect();
        let b: Vec<f32> = (0..n).map(|i| 2.0 * i as f32).collect();
        let mut out = vec![1.0f32; n];
        dev.launch_tiled(
            "axpy",
            Phase::SwarmUpdate,
            2,
            TILE_SIZE * TILE_SIZE,
            &[&a, &b],
            &mut out,
            |_g, local, ctx| ctx.out_old[local] + ctx.inputs[0][local] * 0.5 + ctx.inputs[1][local],
        )
        .unwrap();
        for (i, &v) in out.iter().enumerate() {
            let expect = 1.0 + i as f32 * 0.5 + 2.0 * i as f32;
            assert_eq!(v, expect, "mismatch at {i}");
        }
    }

    #[test]
    fn global_and_local_indices_are_consistent() {
        let dev = Device::v100();
        let n = 100;
        let mut out = vec![0.0f32; n];
        dev.launch_tiled(
            "idx",
            Phase::Other,
            0,
            16,
            &[],
            &mut out,
            |g, local, ctx| {
                assert_eq!(g, ctx.tile_start + local);
                g as f32
            },
        )
        .unwrap();
        assert!(out.iter().enumerate().all(|(i, &v)| v == i as f32));
    }

    #[test]
    fn mismatched_input_length_is_rejected() {
        let dev = Device::v100();
        let a = vec![0.0f32; 5];
        let mut out = vec![0.0f32; 6];
        let err = dev
            .launch_tiled("bad", Phase::Other, 0, 4, &[&a], &mut out, |_, _, _| 0.0)
            .unwrap_err();
        assert!(matches!(err, GpuError::ShapeMismatch { .. }));
    }

    #[test]
    fn oversized_tile_is_rejected() {
        let dev = Device::v100();
        let mut out = vec![0.0f32; 10];
        let huge = dev.profile().shared_mem_per_sm; // elems → 4x bytes over
        let err = dev
            .launch_tiled("huge", Phase::Other, 0, huge, &[], &mut out, |_, _, _| 0.0)
            .unwrap_err();
        assert!(matches!(err, GpuError::InvalidLaunch(_)));
    }

    #[test]
    fn shared_traffic_is_charged() {
        let dev = Device::v100();
        let a = vec![0.0f32; 64];
        let mut out = vec![0.0f32; 64];
        dev.launch_tiled(
            "t",
            Phase::SwarmUpdate,
            1,
            16,
            &[&a],
            &mut out,
            |_, _, _| 0.0,
        )
        .unwrap();
        let c = dev.counters();
        assert!(c.shared_bytes > 0);
        assert_eq!(c.dram_write_bytes, 64 * 4);
        assert_eq!(c.dram_read_bytes, 64 * 8); // input + old output
    }
}
