//! Launch configurations, kernel descriptors and per-element cost
//! annotations.
//!
//! FastPSO's "GPU resource-aware thread creation" (paper §3, technique i)
//! lives here: [`LaunchConfig::resource_aware`] clamps the number of
//! launched threads to what the device can keep resident, turning a
//! one-thread-per-element launch into a grid-stride loop whose per-thread
//! workload is the paper's `tw = n·d / mem` (Equation 3 analogue).

use perf_model::{GpuKernelWork, MemoryPattern, Phase};

/// Device allocation strategy (paper §4.4, Table 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AllocMode {
    /// Allocate a buffer once and recycle it through the caching pool
    /// (FastPSO's default behaviour).
    #[default]
    Caching,
    /// Release to the driver on drop and re-allocate each time
    /// (the "w/ reallocation" ablation arm).
    Realloc,
}

/// A 3-component CUDA dimension.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Dim3 {
    /// Extent along x (the fastest-varying axis).
    pub x: u32,
    /// Extent along y.
    pub y: u32,
    /// Extent along z.
    pub z: u32,
}

impl Dim3 {
    /// A 1-D dimension `(x, 1, 1)`.
    pub const fn x(x: u32) -> Self {
        Dim3 { x, y: 1, z: 1 }
    }

    /// A 2-D dimension `(x, y, 1)`.
    pub const fn xy(x: u32, y: u32) -> Self {
        Dim3 { x, y, z: 1 }
    }

    /// Total threads/blocks described by this dimension.
    pub fn count(&self) -> u64 {
        self.x as u64 * self.y as u64 * self.z as u64
    }
}

impl From<u32> for Dim3 {
    fn from(x: u32) -> Self {
        Dim3::x(x)
    }
}

/// Grid and block dimensions of one kernel launch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaunchConfig {
    /// Blocks in the grid.
    pub grid: Dim3,
    /// Threads per block.
    pub block: Dim3,
}

/// Default CUDA block size used throughout the workspace.
pub const DEFAULT_BLOCK: u32 = 256;

/// How many times the device's resident-thread capacity a grid-stride launch
/// oversubscribes by. A small factor keeps tail effects negligible without
/// paying for excess thread creation — the failure mode the paper's
/// technique (i) exists to prevent.
pub const OVERSUBSCRIPTION: u64 = 2;

impl LaunchConfig {
    /// One logical thread per element, `block_size`-wide blocks.
    pub fn one_per_element(elems: u64, block_size: u32) -> Self {
        let block_size = block_size.max(1);
        let blocks = elems.div_ceil(block_size as u64).max(1);
        LaunchConfig {
            grid: Dim3::x(blocks.min(u32::MAX as u64) as u32),
            block: Dim3::x(block_size),
        }
    }

    /// Resource-aware configuration (paper technique i): launch at most
    /// `OVERSUBSCRIPTION ×` the device's resident-thread capacity and let
    /// each thread grid-stride over `tw = elems / launched` elements.
    pub fn resource_aware(profile: &perf_model::GpuProfile, elems: u64) -> Self {
        let cap = profile.max_resident_threads() * OVERSUBSCRIPTION;
        let threads = elems.min(cap).max(1);
        Self::one_per_element(threads, DEFAULT_BLOCK)
    }

    /// Total threads this configuration launches.
    pub fn threads(&self) -> u64 {
        self.grid.count() * self.block.count()
    }

    /// Per-thread workload when covering `elems` elements with a
    /// grid-stride loop.
    pub fn thread_workload(&self, elems: u64) -> u64 {
        elems.div_ceil(self.threads().max(1))
    }
}

/// Per-element cost annotation of a kernel.
///
/// Kernels in this simulator execute real Rust closures, so the simulator
/// cannot observe their internal operation mix; instead each launch carries
/// an explicit, reviewable cost descriptor. All quantities are *per
/// element processed*.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct KernelCost {
    /// FP32 operations on CUDA cores.
    pub flops: u64,
    /// Mixed-precision tensor-core operations.
    pub tensor_flops: u64,
    /// Bytes read from global memory.
    pub dram_read: u64,
    /// Bytes written to global memory.
    pub dram_write: u64,
    /// Bytes staged through shared memory (reads + writes).
    pub shared: u64,
}

impl KernelCost {
    /// Cost of a coalesced element-wise kernel: `flops` per element,
    /// `read`/`write` bytes of global traffic per element.
    pub const fn elementwise(flops: u64, read: u64, write: u64) -> Self {
        KernelCost {
            flops,
            tensor_flops: 0,
            dram_read: read,
            dram_write: write,
            shared: 0,
        }
    }
}

/// Complete descriptor of one kernel launch: identity, phase attribution,
/// per-element cost, element count, launch geometry and access pattern.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelDesc {
    /// Kernel name (diagnostics and traces).
    pub name: &'static str,
    /// Timeline phase the launch is charged to.
    pub phase: Phase,
    /// Per-element cost.
    pub cost: KernelCost,
    /// Logical elements the kernel covers.
    pub elems: u64,
    /// Logical threads (before resource-aware clamping). For element-wise
    /// kernels this equals `elems`; for particle-per-thread baselines it is
    /// the particle count.
    pub threads: u64,
    /// Actual launch geometry. `None` means "one thread per logical
    /// thread" (no resource-aware clamping) — used by baselines that do not
    /// implement technique (i).
    pub config: Option<LaunchConfig>,
    /// Global-memory access pattern.
    pub pattern: MemoryPattern,
}

impl KernelDesc {
    /// A coalesced element-wise kernel over `elems` elements with
    /// `flops`/`read`/`write` per-element cost and one logical thread per
    /// element.
    pub fn elementwise(
        name: &'static str,
        phase: Phase,
        flops: u64,
        read: u64,
        write: u64,
    ) -> KernelDescBuilder {
        KernelDescBuilder {
            desc: KernelDesc {
                name,
                phase,
                cost: KernelCost::elementwise(flops, read, write),
                elems: 0,
                threads: 0,
                config: None,
                pattern: MemoryPattern::Coalesced,
            },
        }
    }

    /// Shorthand fully-specified constructor used widely in tests: an
    /// element-wise coalesced kernel over `elems` elements.
    pub fn simple(
        name: &'static str,
        phase: Phase,
        flops_per_elem: u64,
        read_per_elem: u64,
        write_per_elem: u64,
        elems: u64,
    ) -> Self {
        KernelDesc {
            name,
            phase,
            cost: KernelCost::elementwise(flops_per_elem, read_per_elem, write_per_elem),
            elems,
            threads: elems,
            config: None,
            pattern: MemoryPattern::Coalesced,
        }
    }

    /// Total work of this launch as a [`GpuKernelWork`] for the model.
    pub fn work(&self) -> GpuKernelWork {
        let launched = self.config.map(|c| c.threads()).unwrap_or(self.threads);
        GpuKernelWork {
            threads: self.threads,
            launched_threads: launched,
            flops: self.cost.flops * self.elems,
            tensor_flops: self.cost.tensor_flops * self.elems,
            dram_read_bytes: self.cost.dram_read * self.elems,
            dram_write_bytes: self.cost.dram_write * self.elems,
            shared_bytes: self.cost.shared * self.elems,
            pattern: self.pattern,
        }
    }
}

// NOTE: the paper's API exposes evaluation kernels through a schema; the
// builder below keeps descriptor construction readable at call sites.

/// Builder for [`KernelDesc`] (finish with [`KernelDescBuilder::over`]).
#[derive(Debug, Clone)]
pub struct KernelDescBuilder {
    desc: KernelDesc,
}

impl KernelDescBuilder {
    /// Set element count (and logical threads = elems).
    pub fn over(mut self, elems: u64) -> KernelDesc {
        self.desc.elems = elems;
        self.desc.threads = elems;
        self.desc
    }

    /// Set a non-default access pattern.
    pub fn pattern(mut self, p: MemoryPattern) -> Self {
        self.desc.pattern = p;
        self
    }

    /// Set per-element shared-memory traffic.
    pub fn shared(mut self, bytes: u64) -> Self {
        self.desc.cost.shared = bytes;
        self
    }

    /// Set per-element tensor-core ops.
    pub fn tensor(mut self, flops: u64) -> Self {
        self.desc.cost.tensor_flops = flops;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use perf_model::GpuProfile;

    #[test]
    fn dim3_counts_multiply() {
        assert_eq!(Dim3::x(4).count(), 4);
        assert_eq!(Dim3::xy(4, 3).count(), 12);
        let d: Dim3 = 7u32.into();
        assert_eq!(d.count(), 7);
    }

    #[test]
    fn one_per_element_rounds_up_to_blocks() {
        let cfg = LaunchConfig::one_per_element(1000, 256);
        assert_eq!(cfg.grid.x, 4);
        assert_eq!(cfg.block.x, 256);
        assert_eq!(cfg.threads(), 1024);
    }

    #[test]
    fn one_per_element_handles_degenerate_inputs() {
        let cfg = LaunchConfig::one_per_element(0, 0);
        assert!(cfg.threads() >= 1);
    }

    #[test]
    fn resource_aware_clamps_huge_launches() {
        let gpu = GpuProfile::tesla_v100();
        let cfg = LaunchConfig::resource_aware(&gpu, 1_000_000_000);
        assert!(
            cfg.threads() <= gpu.max_resident_threads() * OVERSUBSCRIPTION + DEFAULT_BLOCK as u64
        );
        // ... but small launches are not inflated.
        let small = LaunchConfig::resource_aware(&gpu, 1000);
        assert!(small.threads() <= 1024);
    }

    #[test]
    fn thread_workload_matches_paper_formula() {
        let gpu = GpuProfile::tesla_v100();
        let elems = 5000u64 * 200; // n × d from the paper's defaults
        let cfg = LaunchConfig::resource_aware(&gpu, elems);
        // tw = n·d / launched, rounded up (paper Equation 3).
        assert_eq!(cfg.thread_workload(elems), elems.div_ceil(cfg.threads()));
        assert!(cfg.thread_workload(elems) >= 1);
        let big = 1_000_000_000u64;
        let cfg = LaunchConfig::resource_aware(&gpu, big);
        assert!(cfg.thread_workload(big) > 1);
    }

    #[test]
    fn kernel_desc_work_scales_cost_by_elems() {
        let d = KernelDesc::simple("k", Phase::SwarmUpdate, 2, 8, 4, 100);
        let w = d.work();
        assert_eq!(w.flops, 200);
        assert_eq!(w.dram_read_bytes, 800);
        assert_eq!(w.dram_write_bytes, 400);
        assert_eq!(w.threads, 100);
    }

    #[test]
    fn builder_sets_pattern_and_extras() {
        let d = KernelDesc::elementwise("k", Phase::Eval, 1, 4, 0)
            .pattern(MemoryPattern::Strided(200))
            .shared(8)
            .tensor(2)
            .over(10);
        assert_eq!(d.pattern, MemoryPattern::Strided(200));
        assert_eq!(d.work().shared_bytes, 80);
        assert_eq!(d.work().tensor_flops, 20);
    }
}
