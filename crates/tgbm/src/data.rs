//! Synthetic datasets standing in for the case study's UCI data.
//!
//! The paper trains ThunderGBM on covtype (0.58M × 54), susy (5M × 18),
//! higgs (11M × 28) and e2006 (16K × 150361). Real downloads are not
//! available here, so each preset generates a regression dataset with the
//! same *shape character* (cardinality ratio, dimensionality), scaled down
//! by the documented factor — Table 5 only needs the kernels' workload
//! response to launch configuration, which depends on shape, not on the
//! actual feature semantics.

use fastpso_prng::{SplitMix64, Xoshiro256pp};

/// A dense row-major regression dataset.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Dataset name for reports.
    pub name: String,
    n_samples: usize,
    n_features: usize,
    /// Features, row-major `n_samples × n_features`.
    features: Vec<f32>,
    /// Regression targets.
    labels: Vec<f32>,
}

impl Dataset {
    /// Generate a learnable synthetic regression problem: targets are a
    /// sparse nonlinear function of the features plus noise.
    pub fn synthetic_regression(n_samples: usize, n_features: usize, seed: u64) -> Dataset {
        assert!(n_samples > 0 && n_features > 0);
        let mut rng = Xoshiro256pp::new(seed);
        let mut features = Vec::with_capacity(n_samples * n_features);
        for _ in 0..n_samples * n_features {
            features.push(rng.next_range(-1.0, 1.0));
        }
        // A hidden model over a handful of active features, with
        // thresholds so trees can actually capture it.
        let mut coef_rng = SplitMix64::new(seed ^ 0xdead);
        let active = n_features.clamp(1, 8);
        let coefs: Vec<f32> = (0..active)
            .map(|_| (coef_rng.next_f64() * 4.0 - 2.0) as f32)
            .collect();
        let labels = (0..n_samples)
            .map(|i| {
                let row = &features[i * n_features..i * n_features + active];
                let mut y = 0.0f32;
                for (c, &x) in coefs.iter().zip(row) {
                    y += c * x + if x > 0.3 { 0.5 * c } else { 0.0 };
                }
                y + rng.next_range(-0.05, 0.05)
            })
            .collect();
        Dataset {
            name: format!("synthetic-{n_samples}x{n_features}"),
            n_samples,
            n_features,
            features,
            labels,
        }
    }

    fn preset(name: &str, n_samples: usize, n_features: usize, seed: u64) -> Dataset {
        let mut d = Self::synthetic_regression(n_samples, n_features, seed);
        d.name = name.to_string();
        d
    }

    /// covtype stand-in: 0.58M × 54 in the paper, scaled ÷100.
    pub fn covtype_like() -> Dataset {
        Self::preset("covtype", 5_800, 54, 1)
    }

    /// susy stand-in: 5M × 18 in the paper, scaled ÷100.
    pub fn susy_like() -> Dataset {
        Self::preset("susy", 50_000, 18, 2)
    }

    /// higgs stand-in: 11M × 28 in the paper, scaled ÷100.
    pub fn higgs_like() -> Dataset {
        Self::preset("higgs", 110_000, 28, 3)
    }

    /// e2006 stand-in: 16K × 150361 in the paper; samples kept, features
    /// scaled ÷100 (the paper's data is sparse text features; the dense
    /// stand-in keeps the wide-matrix character).
    pub fn e2006_like() -> Dataset {
        Self::preset("e2006", 1_600, 1_500, 4)
    }

    /// The four case-study datasets (Table 5's rows).
    pub fn paper_suite() -> Vec<Dataset> {
        vec![
            Self::covtype_like(),
            Self::susy_like(),
            Self::higgs_like(),
            Self::e2006_like(),
        ]
    }

    /// Number of samples.
    pub fn n_samples(&self) -> usize {
        self.n_samples
    }

    /// Number of features.
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// Row-major feature matrix.
    pub fn features(&self) -> &[f32] {
        &self.features
    }

    /// Feature `f` of sample `i`.
    #[inline]
    pub fn feature(&self, i: usize, f: usize) -> f32 {
        self.features[i * self.n_features + f]
    }

    /// Regression targets.
    pub fn labels(&self) -> &[f32] {
        &self.labels
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_are_consistent() {
        let d = Dataset::synthetic_regression(100, 7, 9);
        assert_eq!(d.n_samples(), 100);
        assert_eq!(d.n_features(), 7);
        assert_eq!(d.features().len(), 700);
        assert_eq!(d.labels().len(), 100);
        assert_eq!(d.feature(3, 2), d.features()[3 * 7 + 2]);
    }

    #[test]
    fn labels_correlate_with_features() {
        // The hidden model must be learnable: label variance explained by
        // the first feature alone should be nonzero.
        let d = Dataset::synthetic_regression(2000, 5, 11);
        let mean_y: f32 = d.labels().iter().sum::<f32>() / 2000.0;
        let mut cov = 0.0f32;
        let mut var_x = 0.0f32;
        for i in 0..2000 {
            let x = d.feature(i, 0);
            cov += x * (d.labels()[i] - mean_y);
            var_x += x * x;
        }
        let beta = (cov / var_x).abs();
        assert!(beta > 0.05, "first feature beta = {beta}");
    }

    #[test]
    fn deterministic_per_seed() {
        let a = Dataset::synthetic_regression(50, 3, 7);
        let b = Dataset::synthetic_regression(50, 3, 7);
        assert_eq!(a.features(), b.features());
        assert_eq!(a.labels(), b.labels());
        let c = Dataset::synthetic_regression(50, 3, 8);
        assert_ne!(a.features(), c.features());
    }

    #[test]
    fn paper_suite_matches_documented_shapes() {
        let suite = Dataset::paper_suite();
        assert_eq!(suite.len(), 4);
        assert_eq!(suite[0].name, "covtype");
        assert_eq!(suite[0].n_features(), 54);
        assert_eq!(suite[1].n_features(), 18);
        assert_eq!(suite[2].n_features(), 28);
        assert_eq!(suite[3].n_samples(), 1600);
        assert!(suite[3].n_features() > 1000, "e2006 stays wide");
    }
}
