//! Decision tree representation for the boosted ensemble.

/// One node of a regression tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Node {
    /// Internal split: `x[feature] <= threshold` goes left.
    Split {
        feature: usize,
        /// Real-valued threshold (upper boundary of the split bin).
        threshold: f32,
        /// Bin index of the split (for quantized traversal).
        bin: u8,
        left: usize,
        right: usize,
    },
    /// Leaf with an output value (already scaled by the learning rate).
    Leaf { value: f32 },
}

/// A depth-bounded regression tree.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Tree {
    /// Nodes; index 0 is the root.
    pub nodes: Vec<Node>,
}

impl Tree {
    /// Predict from raw feature values (row of length `n_features`).
    pub fn predict_row(&self, row: &[f32]) -> f32 {
        let mut idx = 0usize;
        loop {
            match &self.nodes[idx] {
                Node::Leaf { value } => return *value,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                    ..
                } => {
                    idx = if row[*feature] <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }

    /// Number of leaves.
    pub fn n_leaves(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| matches!(n, Node::Leaf { .. }))
            .count()
    }

    /// Maximum depth (root = depth 0).
    pub fn depth(&self) -> usize {
        fn walk(nodes: &[Node], idx: usize) -> usize {
            match &nodes[idx] {
                Node::Leaf { .. } => 0,
                Node::Split { left, right, .. } => 1 + walk(nodes, *left).max(walk(nodes, *right)),
            }
        }
        if self.nodes.is_empty() {
            0
        } else {
            walk(&self.nodes, 0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stump() -> Tree {
        Tree {
            nodes: vec![
                Node::Split {
                    feature: 1,
                    threshold: 0.5,
                    bin: 3,
                    left: 1,
                    right: 2,
                },
                Node::Leaf { value: -1.0 },
                Node::Leaf { value: 2.0 },
            ],
        }
    }

    #[test]
    fn predicts_by_threshold() {
        let t = stump();
        assert_eq!(t.predict_row(&[9.0, 0.4]), -1.0);
        assert_eq!(t.predict_row(&[9.0, 0.5]), -1.0, "boundary goes left");
        assert_eq!(t.predict_row(&[9.0, 0.6]), 2.0);
    }

    #[test]
    fn structure_metrics() {
        let t = stump();
        assert_eq!(t.n_leaves(), 2);
        assert_eq!(t.depth(), 1);
        let leaf_only = Tree {
            nodes: vec![Node::Leaf { value: 0.0 }],
        };
        assert_eq!(leaf_only.depth(), 0);
        assert_eq!(Tree::default().depth(), 0);
    }
}
