//! Training configuration and the tunable kernel-launch table.

/// The 25 launch-configurable kernels of the trainer, mirroring the case
/// study ("we used FastPSO to automatically set the number of threads for
/// 25 GPU kernel functions of ThunderGBM").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KernelId {
    QuantizeFeatures,
    BinBoundaries,
    InitPredictions,
    ComputeGradHess,
    ZeroHistograms,
    CountBins,
    AggregateHistograms,
    SubtractSiblingHist,
    FindBestSplit,
    RegularizeSplits,
    ArgmaxGain,
    ApplySplitFilter,
    PartitionSamples,
    ExclusiveScan,
    GatherRows,
    MissingValueRoute,
    ColumnSampler,
    RowSampler,
    UpdateLeafValues,
    PruneCheck,
    UpdatePredictions,
    ReduceLoss,
    TransposeFeatures,
    PredictKernel,
    ComputeMetrics,
}

impl KernelId {
    /// All tunable kernels, in table order.
    pub const ALL: [KernelId; 25] = [
        KernelId::QuantizeFeatures,
        KernelId::BinBoundaries,
        KernelId::InitPredictions,
        KernelId::ComputeGradHess,
        KernelId::ZeroHistograms,
        KernelId::CountBins,
        KernelId::AggregateHistograms,
        KernelId::SubtractSiblingHist,
        KernelId::FindBestSplit,
        KernelId::RegularizeSplits,
        KernelId::ArgmaxGain,
        KernelId::ApplySplitFilter,
        KernelId::PartitionSamples,
        KernelId::ExclusiveScan,
        KernelId::GatherRows,
        KernelId::MissingValueRoute,
        KernelId::ColumnSampler,
        KernelId::RowSampler,
        KernelId::UpdateLeafValues,
        KernelId::PruneCheck,
        KernelId::UpdatePredictions,
        KernelId::ReduceLoss,
        KernelId::TransposeFeatures,
        KernelId::PredictKernel,
        KernelId::ComputeMetrics,
    ];

    /// Index of this kernel in the tuning table.
    pub fn index(self) -> usize {
        Self::ALL.iter().position(|&k| k == self).expect("in ALL")
    }

    /// Kernel name for traces.
    pub fn name(self) -> &'static str {
        match self {
            KernelId::QuantizeFeatures => "quantize_features",
            KernelId::BinBoundaries => "bin_boundaries",
            KernelId::InitPredictions => "init_predictions",
            KernelId::ComputeGradHess => "compute_grad_hess",
            KernelId::ZeroHistograms => "zero_histograms",
            KernelId::CountBins => "count_bins",
            KernelId::AggregateHistograms => "aggregate_histograms",
            KernelId::SubtractSiblingHist => "subtract_sibling_hist",
            KernelId::FindBestSplit => "find_best_split",
            KernelId::RegularizeSplits => "regularize_splits",
            KernelId::ArgmaxGain => "argmax_gain",
            KernelId::ApplySplitFilter => "apply_split_filter",
            KernelId::PartitionSamples => "partition_samples",
            KernelId::ExclusiveScan => "exclusive_scan",
            KernelId::GatherRows => "gather_rows",
            KernelId::MissingValueRoute => "missing_value_route",
            KernelId::ColumnSampler => "column_sampler",
            KernelId::RowSampler => "row_sampler",
            KernelId::UpdateLeafValues => "update_leaf_values",
            KernelId::PruneCheck => "prune_check",
            KernelId::UpdatePredictions => "update_predictions",
            KernelId::ReduceLoss => "reduce_loss",
            KernelId::TransposeFeatures => "transpose_features",
            KernelId::PredictKernel => "predict_kernel",
            KernelId::ComputeMetrics => "compute_metrics",
        }
    }
}

/// Number of tuned kernels (25) — the PSO search space is `2 ×` this.
pub const N_TUNED_KERNELS: usize = KernelId::ALL.len();

/// Launch dimensions of one kernel: CUDA block size and a grid scale
/// relative to the one-thread-per-element grid.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LaunchDims {
    /// Threads per block (rounded to a legal value at use).
    pub block: u32,
    /// Grid scale: 1.0 launches one thread per element (capped by device
    /// residency); 0.25 launches a quarter as many (more work per thread);
    /// values > 1 oversubscribe.
    pub grid_scale: f32,
}

impl Default for LaunchDims {
    /// ThunderGBM-style compile-time default: 256-thread blocks, one
    /// thread per element.
    fn default() -> Self {
        LaunchDims {
            block: 256,
            grid_scale: 1.0,
        }
    }
}

impl LaunchDims {
    /// Clamp to legal CUDA values (warp-multiple block in [32, 1024],
    /// positive grid scale).
    pub fn sanitized(self) -> LaunchDims {
        let block = (self.block.clamp(32, 1024) / 32) * 32;
        LaunchDims {
            block: block.max(32),
            grid_scale: if self.grid_scale.is_finite() {
                self.grid_scale.clamp(0.05, 8.0)
            } else {
                1.0
            },
        }
    }

    /// Decode from a pair of PSO coordinates in the objective's domain
    /// `(0, 1)`: the first picks the block size on a log₂ grid, the second
    /// the grid scale on a log grid.
    pub fn decode(block_coord: f32, grid_coord: f32) -> LaunchDims {
        let b = block_coord.clamp(0.0, 1.0);
        let g = grid_coord.clamp(0.0, 1.0);
        // 32 … 1024 in warp multiples, log-spaced endpoints.
        let block = (32.0 * (2.0f32).powf(b * 5.0)).round() as u32;
        // 0.125 … 4.0 log-spaced.
        let grid_scale = 0.125 * (32.0f32).powf(g);
        LaunchDims { block, grid_scale }.sanitized()
    }
}

/// GBDT training configuration (paper case study: 40 trees, depth 6,
/// other parameters ThunderGBM defaults).
#[derive(Debug, Clone, PartialEq)]
pub struct TgbmConfig {
    /// Number of boosting rounds.
    pub n_trees: usize,
    /// Maximum tree depth.
    pub depth: usize,
    /// Shrinkage.
    pub learning_rate: f32,
    /// Histogram bins per feature.
    pub n_bins: usize,
    /// L2 regularization on leaf values.
    pub lambda: f32,
    /// Minimum gain to accept a split.
    pub min_gain: f32,
    /// Launch dimensions per kernel, indexed by [`KernelId::index`].
    pub launch: Vec<LaunchDims>,
}

impl TgbmConfig {
    /// Defaults mirroring the case study (pass `40, 6` for the paper's
    /// exact setting).
    pub fn new(n_trees: usize, depth: usize) -> Self {
        TgbmConfig {
            n_trees,
            depth,
            learning_rate: 0.1,
            n_bins: 32,
            lambda: 1.0,
            min_gain: 1e-6,
            launch: vec![LaunchDims::default(); N_TUNED_KERNELS],
        }
    }

    /// The paper's case-study setting: 40 trees of depth 6.
    pub fn paper_case_study() -> Self {
        Self::new(40, 6)
    }

    /// Launch dimensions for `kernel`.
    pub fn dims(&self, kernel: KernelId) -> LaunchDims {
        self.launch[kernel.index()].sanitized()
    }

    /// Replace the whole launch table (length must be
    /// [`N_TUNED_KERNELS`]).
    pub fn with_launch_table(mut self, table: Vec<LaunchDims>) -> Self {
        assert_eq!(table.len(), N_TUNED_KERNELS, "launch table length");
        self.launch = table;
        self
    }

    /// Decode a PSO position vector (50 coordinates in `(0,1)`) into a
    /// launch table and install it.
    pub fn with_position(self, x: &[f32]) -> Self {
        assert_eq!(x.len(), 2 * N_TUNED_KERNELS, "position length");
        let table = x
            .chunks_exact(2)
            .map(|p| LaunchDims::decode(p[0], p[1]))
            .collect();
        self.with_launch_table(table)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_table_has_25_unique_entries() {
        assert_eq!(N_TUNED_KERNELS, 25);
        let set: std::collections::HashSet<_> = KernelId::ALL.iter().collect();
        assert_eq!(set.len(), 25);
        for (i, k) in KernelId::ALL.iter().enumerate() {
            assert_eq!(k.index(), i);
            assert!(!k.name().is_empty());
        }
    }

    #[test]
    fn sanitize_rounds_to_warp_multiples() {
        let d = LaunchDims {
            block: 100,
            grid_scale: 1.0,
        }
        .sanitized();
        assert_eq!(d.block, 96);
        let d = LaunchDims {
            block: 7,
            grid_scale: f32::NAN,
        }
        .sanitized();
        assert_eq!(d.block, 32);
        assert_eq!(d.grid_scale, 1.0);
        let d = LaunchDims {
            block: 9999,
            grid_scale: 100.0,
        }
        .sanitized();
        assert_eq!(d.block, 1024);
        assert_eq!(d.grid_scale, 8.0);
    }

    #[test]
    fn decode_spans_the_legal_range() {
        let lo = LaunchDims::decode(0.0, 0.0);
        assert_eq!(lo.block, 32);
        assert!((lo.grid_scale - 0.125).abs() < 1e-3);
        let hi = LaunchDims::decode(1.0, 1.0);
        assert_eq!(hi.block, 1024);
        assert!((hi.grid_scale - 4.0).abs() < 1e-3);
        let mid = LaunchDims::decode(0.5, 0.5);
        assert!(mid.block > 32 && mid.block < 1024);
    }

    #[test]
    fn with_position_builds_a_full_table() {
        let x: Vec<f32> = (0..50).map(|i| i as f32 / 50.0).collect();
        let cfg = TgbmConfig::new(1, 2).with_position(&x);
        assert_eq!(cfg.launch.len(), 25);
        assert_ne!(cfg.launch[0], cfg.launch[24]);
    }

    #[test]
    #[should_panic(expected = "position length")]
    fn wrong_position_length_panics() {
        let _ = TgbmConfig::new(1, 2).with_position(&[0.5; 10]);
    }

    #[test]
    fn paper_case_study_settings() {
        let cfg = TgbmConfig::paper_case_study();
        assert_eq!(cfg.n_trees, 40);
        assert_eq!(cfg.depth, 6);
    }
}
