//! The ThreadConf objective (the paper's fourth benchmark problem).
//!
//! A PSO particle is a 50-dimensional vector: for each of the 25 tuned
//! kernels, one coordinate selects the block size and one the grid scale
//! (decoded by [`crate::LaunchDims::decode`]). Fitness is the modeled
//! total kernel time of a ThunderGBM training run under that launch
//! table, evaluated against the *workload profile* captured from an
//! actual training pass — the standard surrogate-based auto-tuning setup
//! (evaluating 5000 particles × thousands of iterations against real
//! retraining would take days on any hardware, the paper's included).

use crate::config::{KernelId, LaunchDims, TgbmConfig, N_TUNED_KERNELS};
use crate::gbm::kernel_time_with_dims;
use fastpso_functions::Objective;
use perf_model::{GpuProfile, MemoryPattern};

/// One aggregated launch record: a kernel, its workload shape, and how
/// many times that exact launch occurred during training.
#[derive(Debug, Clone, PartialEq)]
struct ProfileEntry {
    kernel: KernelId,
    elems: u64,
    flops: u64,
    read: u64,
    write: u64,
    pattern: MemoryPattern,
    count: u64,
}

/// Workload profile of a training run: every kernel launch, aggregated by
/// (kernel, shape) so objective evaluation stays cheap.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct KernelProfile {
    entries: Vec<ProfileEntry>,
}

impl KernelProfile {
    /// Record one launch.
    pub fn record(
        &mut self,
        kernel: KernelId,
        elems: u64,
        flops: u64,
        read: u64,
        write: u64,
        pattern: MemoryPattern,
    ) {
        if let Some(e) = self.entries.iter_mut().find(|e| {
            e.kernel == kernel
                && e.elems == elems
                && e.flops == flops
                && e.read == read
                && e.write == write
                && e.pattern == pattern
        }) {
            e.count += 1;
            return;
        }
        self.entries.push(ProfileEntry {
            kernel,
            elems,
            flops,
            read,
            write,
            pattern,
            count: 1,
        });
    }

    /// Number of distinct kernels observed.
    pub fn distinct_kernels(&self) -> usize {
        let set: std::collections::HashSet<_> = self.entries.iter().map(|e| e.kernel).collect();
        set.len()
    }

    /// Total launches recorded.
    pub fn total_launches(&self) -> u64 {
        self.entries.iter().map(|e| e.count).sum()
    }

    /// Modeled total kernel seconds under `cfg`'s launch table.
    pub fn modeled_time(&self, cfg: &TgbmConfig, gpu: &GpuProfile) -> f64 {
        self.entries
            .iter()
            .map(|e| {
                let dims = cfg.dims(e.kernel);
                e.count as f64
                    * kernel_time_with_dims(gpu, dims, e.elems, e.flops, e.read, e.write, e.pattern)
            })
            .sum()
    }
}

/// The 50-dimensional thread-configuration objective.
pub struct ThreadConfObjective {
    profile: KernelProfile,
    gpu: GpuProfile,
    base_cfg: TgbmConfig,
    /// Millisecond scaling keeps fitness values in a numerically
    /// comfortable range for f32 PSO arithmetic.
    scale: f64,
}

impl ThreadConfObjective {
    /// Build from a captured training profile.
    pub fn new(profile: KernelProfile, base_cfg: TgbmConfig, gpu: GpuProfile) -> Self {
        assert!(
            profile.total_launches() > 0,
            "profile must contain at least one launch"
        );
        ThreadConfObjective {
            profile,
            gpu,
            base_cfg,
            scale: 1e3,
        }
    }

    /// Modeled time (seconds) of the default launch table.
    pub fn default_time(&self) -> f64 {
        self.profile.modeled_time(&self.base_cfg, &self.gpu)
    }

    /// Modeled time (seconds) of an arbitrary position.
    ///
    /// Positions shorter than 50 coordinates are padded with the
    /// default-equivalent coordinate; longer positions use the first 50
    /// (the paper's Figure 4h sweeps PSO dimensionality past the natural
    /// 50 of this problem — the extra coordinates are inert).
    pub fn time_of_position(&self, x: &[f32]) -> f64 {
        let mut coords = [0.6f32; 2 * N_TUNED_KERNELS];
        for (slot, &v) in coords.iter_mut().zip(x) {
            *slot = v;
        }
        let cfg = self.base_cfg.clone().with_position(&coords);
        self.profile.modeled_time(&cfg, &self.gpu)
    }

    /// Decode a position into a launch table (for installing the winner).
    pub fn decode(&self, x: &[f32]) -> Vec<LaunchDims> {
        x.chunks_exact(2)
            .map(|p| LaunchDims::decode(p[0], p[1]))
            .collect()
    }
}

impl Objective for ThreadConfObjective {
    fn name(&self) -> &str {
        "ThreadConf"
    }

    fn eval(&self, x: &[f32]) -> f32 {
        // Out-of-domain coordinates are clamped by the decoder, matching
        // how a practical tuner sanitizes candidate configurations.
        (self.time_of_position(x) * self.scale) as f32
    }

    fn domain(&self) -> (f32, f32) {
        (0.0, 1.0)
    }

    fn optimum(&self, _d: usize) -> Option<f64> {
        None // empirical objective; optimum unknown
    }

    fn flops_per_dim(&self) -> u64 {
        // Each evaluation walks the aggregated profile; amortize per dim.
        (self.profile.entries.len() as u64 * 20) / (2 * N_TUNED_KERNELS as u64) + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::Dataset;
    use crate::gbm::Gbm;

    fn objective() -> ThreadConfObjective {
        let cfg = TgbmConfig::new(3, 3);
        let data = Dataset::synthetic_regression(400, 6, 9);
        let model = Gbm::train(&cfg, &data).unwrap();
        ThreadConfObjective::new(model.profile, cfg, GpuProfile::tesla_v100())
    }

    #[test]
    fn default_position_matches_default_time() {
        let obj = objective();
        // Decode(…) of the coordinates that produce (256, 1.0):
        // block: 32·2^(5b) = 256 → b = 0.6; grid: 0.125·32^g = 1 → g = 0.6.
        let x = vec![0.6f32; 50];
        let decoded = obj.decode(&x);
        assert_eq!(decoded[0].block, 256);
        assert!((decoded[0].grid_scale - 1.0).abs() < 0.05);
        let t = obj.time_of_position(&x);
        let d = obj.default_time();
        assert!((t - d).abs() / d < 0.05, "t={t}, default={d}");
    }

    #[test]
    fn eval_is_positive_and_deterministic() {
        let obj = objective();
        let x = vec![0.3f32; 50];
        let a = obj.eval(&x);
        assert!(a > 0.0);
        assert_eq!(a, obj.eval(&x));
    }

    #[test]
    fn some_position_beats_the_default() {
        // The tuning premise: the response surface is not flat and the
        // default is not globally optimal. Scan a few candidates.
        let obj = objective();
        let default = obj.default_time();
        let mut best = f64::INFINITY;
        for b in [0.0f32, 0.2, 0.4, 0.6, 0.8, 1.0] {
            for g in [0.2f32, 0.4, 0.6, 0.8] {
                let mut x = Vec::with_capacity(50);
                for _ in 0..25 {
                    x.push(b);
                    x.push(g);
                }
                best = best.min(obj.time_of_position(&x));
            }
        }
        assert!(
            best < default,
            "grid scan best {best} should beat default {default}"
        );
    }

    #[test]
    fn profile_aggregation_counts_repeats() {
        let mut p = KernelProfile::default();
        p.record(KernelId::CountBins, 100, 1, 4, 4, MemoryPattern::Random);
        p.record(KernelId::CountBins, 100, 1, 4, 4, MemoryPattern::Random);
        p.record(KernelId::CountBins, 200, 1, 4, 4, MemoryPattern::Random);
        assert_eq!(p.total_launches(), 3);
        assert_eq!(p.entries.len(), 2);
        assert_eq!(p.distinct_kernels(), 1);
    }
}
