//! Histogram-based GBDT training on the GPU simulator.
//!
//! The trainer is a compact but genuine ThunderGBM-style pipeline:
//! features are quantized once into per-feature bins, each boosting round
//! computes gradients (squared loss), grows one depth-wise tree by
//! histogram accumulation + gain maximization, and applies shrinkage.
//! Every pipeline stage runs as a named, launch-configurable kernel whose
//! modeled time responds to the configured block size and grid scale —
//! the response surface the paper's case study optimizes with PSO.

use crate::config::{KernelId, LaunchDims, TgbmConfig};
use crate::data::Dataset;
use crate::objective::KernelProfile;
use crate::tree::{Node, Tree};
use gpu_sim::{Counters, Device, GpuError, Phase};
use perf_model::{gpu_kernel_time, GpuKernelWork, GpuProfile, MemoryPattern};

/// Mean squared error of predictions against targets.
pub fn mse(pred: &[f32], y: &[f32]) -> f64 {
    assert_eq!(pred.len(), y.len());
    pred.iter()
        .zip(y)
        .map(|(p, t)| {
            let e = (*p - *t) as f64;
            e * e
        })
        .sum::<f64>()
        / pred.len().max(1) as f64
}

/// Modeled execution time of one tgbm kernel under explicit launch
/// dimensions, extending the base roofline with two geometry effects:
///
/// * **SM imbalance** — when the grid has few blocks, the last wave
///   leaves SMs idle (`ceil(b/SM)/(b/SM)`); large blocks make this worse
///   on small workloads, which is exactly the effect the paper's tuning
///   exploits on the smaller datasets;
/// * **oversubscription tail** — grid scales far above 1 launch threads
///   with no work, paying scheduling overhead.
pub fn kernel_time_with_dims(
    gpu: &GpuProfile,
    dims: LaunchDims,
    elems: u64,
    flops_per_elem: u64,
    read_per_elem: u64,
    write_per_elem: u64,
    pattern: MemoryPattern,
) -> f64 {
    let dims = dims.sanitized();
    let cap = gpu.max_resident_threads() * 2;
    let natural = elems.min(cap).max(1);
    let target = ((natural as f64 * dims.grid_scale as f64) as u64).max(1);
    let blocks = target.div_ceil(dims.block as u64).max(1);
    let launched = blocks * dims.block as u64;

    let work = GpuKernelWork {
        threads: elems,
        launched_threads: launched,
        flops: flops_per_elem * elems,
        tensor_flops: 0,
        dram_read_bytes: read_per_elem * elems,
        dram_write_bytes: write_per_elem * elems,
        shared_bytes: 0,
        pattern,
    };
    let base = gpu_kernel_time(gpu, &work);

    // Grid-geometry efficiency. Above one wave of blocks, the partial
    // last wave leaves SMs idle (ceil/exact ratio). Below one wave, work
    // concentrates on `blocks` SMs: latency hiding is unaffected (already
    // priced by the roofline's occupancy term) but per-SM execution
    // resources bound the sub-wave kernel mildly — fewer, larger blocks
    // are slower on small workloads, which is the effect the paper's
    // ThreadConf tuning exploits.
    let sms = gpu.sm_count as f64;
    let waves = blocks as f64 / sms;
    let imbalance = if waves > 1.0 {
        waves.ceil() / waves
    } else {
        1.0 + 0.3 * (1.0 - waves)
    };
    // Idle-thread tail: threads launched beyond the work items.
    let useful = elems.min(launched) as f64;
    let tail = 1.0 + 0.25 * ((launched as f64 - useful) / launched as f64).max(0.0);

    base * imbalance.clamp(1.0, 8.0) * tail
}

/// A trained boosted ensemble.
#[derive(Debug, Clone)]
pub struct Gbm {
    /// Trees, in boosting order (leaf values already include shrinkage).
    pub trees: Vec<Tree>,
    /// Training MSE after each round.
    pub loss_curve: Vec<f64>,
    /// Per-kernel workload profile captured during training (feeds the
    /// ThreadConf objective).
    pub profile: KernelProfile,
}

struct Trainer<'a> {
    cfg: &'a TgbmConfig,
    data: &'a Dataset,
    dev: Device,
    gpu: GpuProfile,
    profile: KernelProfile,
    /// Quantized features (`n × f`), bin ids.
    bins: Vec<u8>,
    /// Per-feature bin upper boundaries (`f × (n_bins-1)`).
    boundaries: Vec<f32>,
}

impl<'a> Trainer<'a> {
    /// Charge one kernel under the configured dims and record it in the
    /// workload profile.
    fn kernel(
        &mut self,
        id: KernelId,
        elems: u64,
        flops: u64,
        read: u64,
        write: u64,
        pattern: MemoryPattern,
    ) {
        let dims = self.cfg.dims(id);
        let t = kernel_time_with_dims(&self.gpu, dims, elems, flops, read, write, pattern);
        let mut c = Counters::new();
        c.kernel_launches = 1;
        c.flops = flops * elems;
        c.dram_read_bytes = read * elems;
        c.dram_write_bytes = write * elems;
        self.dev.charge_raw(Phase::Other, t, c);
        self.profile.record(id, elems, flops, read, write, pattern);
    }

    fn quantize(&mut self) {
        let (n, f, b) = (
            self.data.n_samples(),
            self.data.n_features(),
            self.cfg.n_bins,
        );
        // Bin boundaries by per-feature quantiles.
        self.kernel(
            KernelId::TransposeFeatures,
            (n * f) as u64,
            1,
            4,
            4,
            MemoryPattern::Strided(f as u32),
        );
        let mut boundaries = vec![0.0f32; f * (b - 1)];
        let mut col = vec![0.0f32; n];
        for feat in 0..f {
            for (i, slot) in col.iter_mut().enumerate() {
                *slot = self.data.feature(i, feat);
            }
            col.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
            for q in 1..b {
                let idx = (q * n / b).min(n - 1);
                boundaries[feat * (b - 1) + q - 1] = col[idx];
            }
        }
        self.kernel(
            KernelId::BinBoundaries,
            (f * b) as u64,
            8,
            4,
            4,
            MemoryPattern::Coalesced,
        );

        // Quantize every value.
        let mut bins = vec![0u8; n * f];
        for i in 0..n {
            for feat in 0..f {
                let x = self.data.feature(i, feat);
                let bs = &boundaries[feat * (b - 1)..(feat + 1) * (b - 1)];
                // First boundary >= x gives the bin.
                let bin = bs.partition_point(|&t| t < x);
                bins[i * f + feat] = bin as u8;
            }
        }
        self.kernel(
            KernelId::QuantizeFeatures,
            (n * f) as u64,
            8,
            4,
            1,
            MemoryPattern::Coalesced,
        );
        self.bins = bins;
        self.boundaries = boundaries;
    }

    /// Grow one tree against the residual gradients; returns the tree and
    /// updates `preds` in place.
    fn grow_tree(&mut self, preds: &mut [f32]) -> Tree {
        let (n, f, b) = (
            self.data.n_samples(),
            self.data.n_features(),
            self.cfg.n_bins,
        );
        let y = self.data.labels();
        let lam = self.cfg.lambda;

        // Gradients of squared loss (hessian = 1 → counts).
        let grad: Vec<f32> = preds.iter().zip(y).map(|(p, t)| p - t).collect();
        self.kernel(
            KernelId::ComputeGradHess,
            n as u64,
            4,
            8,
            8,
            MemoryPattern::Coalesced,
        );

        // Sampling / routing kernels run for cost fidelity (the compact
        // trainer uses all rows/columns and has no missing values).
        self.kernel(
            KernelId::RowSampler,
            n as u64,
            2,
            4,
            1,
            MemoryPattern::Coalesced,
        );
        self.kernel(
            KernelId::ColumnSampler,
            f as u64,
            2,
            4,
            1,
            MemoryPattern::Coalesced,
        );
        self.kernel(
            KernelId::MissingValueRoute,
            n as u64,
            1,
            1,
            1,
            MemoryPattern::Coalesced,
        );

        let mut tree = Tree {
            nodes: vec![Node::Leaf { value: 0.0 }],
        };
        // node assignment per sample; usize::MAX = settled in a leaf.
        let mut node_of: Vec<usize> = vec![0; n];
        // Frontier of splittable node ids.
        let mut frontier: Vec<usize> = vec![0];

        for _level in 0..self.cfg.depth {
            if frontier.is_empty() {
                break;
            }
            let hist_elems = (frontier.len() * f * b) as u64;
            self.kernel(
                KernelId::ZeroHistograms,
                hist_elems,
                1,
                0,
                8,
                MemoryPattern::Coalesced,
            );

            // Histogram accumulation: (sum_g, count) per (node, feat, bin).
            let mut hist_g = vec![0.0f64; frontier.len() * f * b];
            let mut hist_c = vec![0u32; frontier.len() * f * b];
            let slot_of: std::collections::HashMap<usize, usize> = frontier
                .iter()
                .enumerate()
                .map(|(s, &id)| (id, s))
                .collect();
            for i in 0..n {
                let Some(&slot) = slot_of.get(&node_of[i]) else {
                    continue;
                };
                let base = slot * f * b;
                for feat in 0..f {
                    let bin = self.bins[i * f + feat] as usize;
                    hist_g[base + feat * b + bin] += grad[i] as f64;
                    hist_c[base + feat * b + bin] += 1;
                }
            }
            self.kernel(
                KernelId::CountBins,
                (n * f) as u64,
                4,
                5,
                8,
                MemoryPattern::Random, // histogram scatter
            );
            self.kernel(
                KernelId::AggregateHistograms,
                hist_elems,
                2,
                8,
                8,
                MemoryPattern::Coalesced,
            );
            self.kernel(
                KernelId::SubtractSiblingHist,
                hist_elems / 2 + 1,
                2,
                16,
                8,
                MemoryPattern::Coalesced,
            );

            // Split finding per frontier node.
            self.kernel(
                KernelId::FindBestSplit,
                (frontier.len() * f * b) as u64,
                6,
                12,
                0,
                MemoryPattern::Coalesced,
            );
            self.kernel(
                KernelId::RegularizeSplits,
                (frontier.len() * f) as u64,
                4,
                4,
                4,
                MemoryPattern::Coalesced,
            );
            self.kernel(
                KernelId::ArgmaxGain,
                frontier.len() as u64 * f as u64,
                2,
                8,
                4,
                MemoryPattern::Coalesced,
            );

            let mut next_frontier = Vec::new();
            let mut splits: Vec<(usize, usize, usize, u8)> = Vec::new(); // (node, slot, feat, bin)
            for (slot, &node_id) in frontier.iter().enumerate() {
                let base = slot * f * b;
                // Node totals: every sample lands in exactly one bin of
                // *each* feature, so summing feature 0's bins alone yields
                // the node's gradient sum and count (any feature would do).
                let mut g_tot = 0.0f64;
                let mut c_tot = 0u64;
                for bin in 0..b {
                    g_tot += hist_g[base + bin];
                    c_tot += hist_c[base + bin] as u64;
                }
                let parent_score = g_tot * g_tot / (c_tot as f64 + lam as f64);
                let mut best: Option<(f64, usize, u8)> = None;
                for feat in 0..f {
                    let mut gl = 0.0f64;
                    let mut cl = 0u64;
                    for bin in 0..b - 1 {
                        gl += hist_g[base + feat * b + bin];
                        cl += hist_c[base + feat * b + bin] as u64;
                        let gr = g_tot - gl;
                        let cr = c_tot - cl;
                        if cl == 0 || cr == 0 {
                            continue;
                        }
                        let gain = gl * gl / (cl as f64 + lam as f64)
                            + gr * gr / (cr as f64 + lam as f64)
                            - parent_score;
                        if gain > self.cfg.min_gain as f64
                            && best.map(|(bg, _, _)| gain > bg).unwrap_or(true)
                        {
                            best = Some((gain, feat, bin as u8));
                        }
                    }
                }
                if let Some((_, feat, bin)) = best {
                    splits.push((node_id, slot, feat, bin));
                } else {
                    // Becomes a leaf; value set in the leaf pass.
                    let _ = node_id;
                }
            }

            // Apply splits: create children, reassign samples.
            for &(node_id, _slot, feat, bin) in &splits {
                let left = tree.nodes.len();
                let right = left + 1;
                tree.nodes.push(Node::Leaf { value: 0.0 });
                tree.nodes.push(Node::Leaf { value: 0.0 });
                let threshold = self.boundaries[feat * (b - 1) + bin as usize];
                tree.nodes[node_id] = Node::Split {
                    feature: feat,
                    threshold,
                    bin,
                    left,
                    right,
                };
                next_frontier.push(left);
                next_frontier.push(right);
            }
            if !splits.is_empty() {
                let split_of: std::collections::HashMap<usize, (usize, u8, usize)> = splits
                    .iter()
                    .map(|&(node_id, _, feat, bin)| {
                        if let Node::Split { left, .. } = tree.nodes[node_id] {
                            (node_id, (feat, bin, left))
                        } else {
                            unreachable!("just installed a split")
                        }
                    })
                    .collect();
                for (i, node) in node_of.iter_mut().enumerate() {
                    if let Some(&(feat, bin, left)) = split_of.get(node) {
                        let sample_bin = self.bins[i * f + feat];
                        *node = if sample_bin <= bin { left } else { left + 1 };
                    }
                }
            }
            self.kernel(
                KernelId::ApplySplitFilter,
                n as u64,
                3,
                6,
                4,
                MemoryPattern::Coalesced,
            );
            self.kernel(
                KernelId::ExclusiveScan,
                n as u64,
                2,
                4,
                4,
                MemoryPattern::Coalesced,
            );
            self.kernel(
                KernelId::PartitionSamples,
                n as u64,
                3,
                8,
                8,
                MemoryPattern::Random,
            );
            self.kernel(
                KernelId::GatherRows,
                n as u64,
                1,
                8,
                4,
                MemoryPattern::Random,
            );

            frontier = next_frontier;
        }

        // Leaf values: -G/(C+λ), shrunk by the learning rate.
        let mut leaf_g: std::collections::HashMap<usize, (f64, u64)> = Default::default();
        for i in 0..n {
            let e = leaf_g.entry(node_of[i]).or_insert((0.0, 0));
            e.0 += grad[i] as f64;
            e.1 += 1;
        }
        for (&node_id, &(g, c)) in &leaf_g {
            if let Node::Leaf { value } = &mut tree.nodes[node_id] {
                *value = (-(g) / (c as f64 + lam as f64)) as f32 * self.cfg.learning_rate;
            }
        }
        self.kernel(
            KernelId::UpdateLeafValues,
            tree.n_leaves() as u64,
            4,
            8,
            4,
            MemoryPattern::Coalesced,
        );
        self.kernel(
            KernelId::PruneCheck,
            tree.nodes.len() as u64,
            2,
            4,
            1,
            MemoryPattern::Coalesced,
        );

        // Update predictions through the assignment map.
        for i in 0..n {
            if let Node::Leaf { value } = tree.nodes[node_of[i]] {
                preds[i] += value;
            }
        }
        self.kernel(
            KernelId::UpdatePredictions,
            n as u64,
            2,
            8,
            4,
            MemoryPattern::Coalesced,
        );

        tree
    }
}

impl Gbm {
    /// Train an ensemble on `data` with modeled kernel timing on a V100.
    pub fn train(cfg: &TgbmConfig, data: &Dataset) -> Result<Gbm, GpuError> {
        Self::train_on(cfg, data, Device::v100())
    }

    /// Train with an explicit device (its timeline accumulates the modeled
    /// kernel times; read it via [`Device::timeline`]).
    pub fn train_on(cfg: &TgbmConfig, data: &Dataset, dev: Device) -> Result<Gbm, GpuError> {
        assert!(cfg.n_trees > 0 && cfg.depth > 0, "trivial config");
        let gpu = dev.profile();
        let mut tr = Trainer {
            cfg,
            data,
            dev,
            gpu,
            profile: KernelProfile::default(),
            bins: Vec::new(),
            boundaries: Vec::new(),
        };
        tr.quantize();
        let n = data.n_samples();
        let mut preds = vec![0.0f32; n];
        tr.kernel(
            KernelId::InitPredictions,
            n as u64,
            0,
            0,
            4,
            MemoryPattern::Coalesced,
        );

        let mut trees = Vec::with_capacity(cfg.n_trees);
        let mut loss_curve = Vec::with_capacity(cfg.n_trees);
        for _round in 0..cfg.n_trees {
            let tree = tr.grow_tree(&mut preds);
            trees.push(tree);
            loss_curve.push(mse(&preds, data.labels()));
            tr.kernel(
                KernelId::ReduceLoss,
                n as u64,
                2,
                4,
                0,
                MemoryPattern::Coalesced,
            );
            tr.kernel(
                KernelId::ComputeMetrics,
                64,
                2,
                4,
                4,
                MemoryPattern::Coalesced,
            );
        }

        // Final full-ensemble prediction pass (training-metric report).
        tr.kernel(
            KernelId::PredictKernel,
            n as u64,
            (cfg.n_trees * cfg.depth) as u64 * 4,
            (cfg.n_trees * cfg.depth) as u64 * 8,
            4,
            MemoryPattern::Random, // tree traversal is pointer chasing
        );

        Ok(Gbm {
            trees,
            loss_curve,
            profile: tr.profile,
        })
    }

    /// Predict the full dataset (also a launch-configurable kernel in the
    /// real system; here host-side, used by tests and examples).
    pub fn predict(&self, data: &Dataset) -> Vec<f32> {
        let f = data.n_features();
        (0..data.n_samples())
            .map(|i| {
                let row = &data.features()[i * f..(i + 1) * f];
                self.trees.iter().map(|t| t.predict_row(row)).sum()
            })
            .collect()
    }

    /// Modeled training time under a hypothetical launch table, evaluated
    /// against this model's captured workload profile (no retraining).
    pub fn modeled_time_with(&self, cfg: &TgbmConfig, gpu: &GpuProfile) -> f64 {
        self.profile.modeled_time(cfg, gpu)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> (TgbmConfig, Dataset) {
        (
            TgbmConfig::new(10, 3),
            Dataset::synthetic_regression(500, 6, 5),
        )
    }

    #[test]
    fn training_reduces_loss_monotonically_overall() {
        let (cfg, data) = small();
        let model = Gbm::train(&cfg, &data).unwrap();
        assert_eq!(model.trees.len(), 10);
        let first = model.loss_curve[0];
        let last = *model.loss_curve.last().unwrap();
        assert!(last < first, "loss {first} -> {last} must drop");
        // Squared-loss boosting with shrinkage: training loss never rises.
        for w in model.loss_curve.windows(2) {
            assert!(w[1] <= w[0] * 1.0001, "round regressed: {w:?}");
        }
    }

    #[test]
    fn trees_respect_depth_bound() {
        let (cfg, data) = small();
        let model = Gbm::train(&cfg, &data).unwrap();
        for t in &model.trees {
            assert!(t.depth() <= cfg.depth);
            assert!(t.n_leaves() >= 1);
        }
    }

    #[test]
    fn predict_matches_training_predictions() {
        let (cfg, data) = small();
        let model = Gbm::train(&cfg, &data).unwrap();
        let preds = model.predict(&data);
        let final_mse = mse(&preds, data.labels());
        let recorded = *model.loss_curve.last().unwrap();
        assert!(
            (final_mse - recorded).abs() < 1e-3 * (1.0 + recorded),
            "{final_mse} vs {recorded}"
        );
    }

    #[test]
    fn profile_captures_all_25_kernels() {
        let (cfg, data) = small();
        let model = Gbm::train(&cfg, &data).unwrap();
        assert_eq!(model.profile.distinct_kernels(), 25);
    }

    #[test]
    fn bad_launch_dims_cost_more_modeled_time() {
        let (cfg, data) = small();
        let model = Gbm::train(&cfg, &data).unwrap();
        let gpu = GpuProfile::tesla_v100();
        let default_t = model.modeled_time_with(&cfg, &gpu);
        let mut bad = cfg.clone();
        bad.launch = vec![
            LaunchDims {
                block: 1024,
                grid_scale: 8.0,
            };
            crate::config::N_TUNED_KERNELS
        ];
        let bad_t = model.modeled_time_with(&bad, &gpu);
        assert!(
            bad_t > default_t,
            "bad {bad_t} must exceed default {default_t}"
        );
    }

    #[test]
    fn mse_basics() {
        assert_eq!(mse(&[1.0, 2.0], &[1.0, 2.0]), 0.0);
        assert_eq!(mse(&[0.0], &[2.0]), 4.0);
    }

    #[test]
    fn kernel_time_penalizes_few_large_blocks_on_small_work() {
        let gpu = GpuProfile::tesla_v100();
        let small_work = 2000u64;
        let big = kernel_time_with_dims(
            &gpu,
            LaunchDims {
                block: 1024,
                grid_scale: 1.0,
            },
            small_work,
            4,
            8,
            4,
            MemoryPattern::Coalesced,
        );
        let small = kernel_time_with_dims(
            &gpu,
            LaunchDims {
                block: 64,
                grid_scale: 1.0,
            },
            small_work,
            4,
            8,
            4,
            MemoryPattern::Coalesced,
        );
        assert!(small < big, "64-blocks {small} vs 1024-blocks {big}");
    }
}
