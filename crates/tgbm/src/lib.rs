//! **tgbm** — a ThunderGBM-like gradient boosted decision tree trainer on
//! the GPU simulator, built for the paper's §4.6 case study: using FastPSO
//! to tune the thread/block configuration of a real GPU program's kernels.
//!
//! ThunderGBM (Wen et al., JMLR 2020) trains GBDTs with a few dozen CUDA
//! kernels whose launch dimensions are compile-time defaults. The paper
//! tunes **25 kernels × (block size, grid scale) = 50 dimensions** with
//! PSO and reports up to 1.25× end-to-end speedup (Table 5). This crate
//! provides everything that experiment needs:
//!
//! * a real histogram-based GBDT (quantization, gradient computation,
//!   depth-wise tree growth with gain-based splits, shrinkage) whose
//!   stages run as launch-configurable kernels on [`gpu_sim`];
//! * synthetic stand-ins for the four UCI datasets (covtype, susy, higgs,
//!   e2006), scaled down by a documented factor;
//! * [`ThreadConfObjective`] — the 50-dimensional PSO objective that maps
//!   a position vector to launch dimensions and scores them against the
//!   kernel workload profile captured from a training run.
//!
//! # Example
//!
//! ```
//! use tgbm::{Dataset, Gbm, TgbmConfig};
//!
//! let data = Dataset::synthetic_regression(200, 8, 42);
//! let cfg = TgbmConfig::new(5, 3); // 5 trees, depth 3
//! let model = Gbm::train(&cfg, &data).unwrap();
//! let before = tgbm::mse(&vec![0.0; data.n_samples()], data.labels());
//! let after = tgbm::mse(&model.predict(&data), data.labels());
//! assert!(after < before, "boosting must reduce training error");
//! ```

pub mod config;
pub mod data;
pub mod gbm;
pub mod objective;
pub mod tree;

pub use config::{KernelId, LaunchDims, TgbmConfig, N_TUNED_KERNELS};
pub use data::Dataset;
pub use gbm::{mse, Gbm};
pub use objective::{KernelProfile, ThreadConfObjective};
