//! End-to-end tgbm integration tests: the trainer must genuinely learn on
//! every case-study dataset, the captured profiles must price launch
//! tables consistently, and the ThreadConf objective must behave as a
//! well-posed PSO problem.

use fastpso_functions::Objective;
use gpu_sim::Device;
use perf_model::GpuProfile;
use tgbm::{mse, Dataset, Gbm, LaunchDims, TgbmConfig, ThreadConfObjective, N_TUNED_KERNELS};

#[test]
fn trainer_learns_every_paper_dataset() {
    // Scaled-down rounds keep the test quick; the learning signal must
    // still be unambiguous on every dataset shape.
    for data in [Dataset::covtype_like(), Dataset::e2006_like()] {
        let cfg = TgbmConfig::new(5, 4);
        let model = Gbm::train(&cfg, &data).unwrap();
        let baseline = mse(&vec![0.0; data.n_samples()], data.labels());
        let trained = *model.loss_curve.last().unwrap();
        assert!(
            trained < baseline * 0.7,
            "{}: {baseline} -> {trained} is not learning",
            data.name
        );
    }
}

#[test]
fn profile_pricing_is_linear_in_repetition() {
    // Training twice as many trees should roughly double the modeled
    // kernel time under any launch table (up to the one-time quantize).
    let data = Dataset::synthetic_regression(600, 8, 3);
    let gpu = GpuProfile::tesla_v100();
    let short_cfg = TgbmConfig::new(3, 3);
    let long_cfg = TgbmConfig::new(6, 3);
    let short = Gbm::train(&short_cfg, &data).unwrap();
    let long = Gbm::train(&long_cfg, &data).unwrap();
    let ts = short.modeled_time_with(&short_cfg, &gpu);
    let tl = long.modeled_time_with(&long_cfg, &gpu);
    let ratio = tl / ts;
    assert!(
        (1.5..2.5).contains(&ratio),
        "6-tree/3-tree modeled-time ratio {ratio} not ~2"
    );
}

#[test]
fn threadconf_objective_is_well_posed_for_pso() {
    let data = Dataset::covtype_like();
    let cfg = TgbmConfig::new(3, 3);
    let model = Gbm::train(&cfg, &data).unwrap();
    let obj = ThreadConfObjective::new(model.profile, cfg, GpuProfile::tesla_v100());

    // Domain and dimensionality contract.
    assert_eq!(obj.domain(), (0.0, 1.0));
    assert_eq!(obj.name(), "ThreadConf");

    // Deterministic, positive, finite across the domain.
    let corners = [vec![0.0f32; 50], vec![1.0f32; 50], vec![0.5f32; 50]];
    for x in &corners {
        let v = obj.eval(x);
        assert!(v.is_finite() && v > 0.0);
        assert_eq!(v, obj.eval(x));
    }

    // Out-of-domain coordinates are clamped, not catastrophic.
    let wild = vec![5.0f32; 50];
    assert!(obj.eval(&wild).is_finite());

    // Short and long positions are tolerated (Figure 4h's dim sweep).
    assert!(obj.eval(&[0.5; 10]).is_finite());
    assert!(obj.eval(&[0.5; 200]).is_finite());
}

#[test]
fn tuned_tables_install_and_retrain() {
    let data = Dataset::synthetic_regression(800, 10, 5);
    let cfg = TgbmConfig::new(3, 3);
    let dev = Device::v100();
    let model = Gbm::train_on(&cfg, &data, dev.clone()).unwrap();
    let default_time = dev.timeline().total_seconds();

    // Install an arbitrary legal table and retrain: model quality must be
    // unchanged (launch dims affect time, never results).
    let table = vec![
        LaunchDims {
            block: 64,
            grid_scale: 0.5,
        };
        N_TUNED_KERNELS
    ];
    let tuned_cfg = cfg.clone().with_launch_table(table);
    let dev2 = Device::v100();
    let retrained = Gbm::train_on(&tuned_cfg, &data, dev2.clone()).unwrap();
    assert_eq!(
        model.loss_curve, retrained.loss_curve,
        "launch geometry must not alter the numerics"
    );
    assert_ne!(
        default_time,
        dev2.timeline().total_seconds(),
        "but it must alter the modeled time"
    );
}
