//! Cross-backend equivalence: the workspace's strongest correctness
//! property. All deterministic backends draw randomness from the same
//! counter-addressed Philox streams and evaluate the same element-wise
//! formula in the same operation order, so their trajectories must be
//! **bit-identical** — sequential, rayon-parallel, GPU global-memory, GPU
//! shared-memory and multi-GPU tile-matrix. The tensor-core strategy is
//! the one documented exception (f16 operand rounding).

use fastpso_suite::fastpso::{
    GpuBackend, MultiGpuBackend, MultiGpuStrategy, ParBackend, PsoBackend, PsoConfig, SeqBackend,
    UpdateStrategy,
};
use fastpso_suite::functions::builtins::{Ackley, Griewank, Rastrigin, Sphere};
use fastpso_suite::functions::Objective;

fn cfg(n: usize, d: usize, iters: usize, seed: u64) -> PsoConfig {
    PsoConfig::builder(n, d)
        .max_iter(iters)
        .seed(seed)
        .build()
        .unwrap()
}

#[test]
fn all_deterministic_backends_agree_bitwise() {
    let objectives: Vec<&dyn Objective> = vec![&Sphere, &Griewank, &Rastrigin, &Ackley];
    for (i, obj) in objectives.into_iter().enumerate() {
        let c = cfg(48, 10, 40, 100 + i as u64);
        let reference = SeqBackend.run(&c, obj).unwrap();

        let backends: Vec<(&str, Box<dyn PsoBackend>)> = vec![
            ("par", Box::new(ParBackend)),
            ("gpu-global", Box::new(GpuBackend::new())),
            (
                "gpu-smem",
                Box::new(GpuBackend::new().strategy(UpdateStrategy::SharedMem)),
            ),
            (
                "multi-tile-3",
                Box::new(MultiGpuBackend::new(3, MultiGpuStrategy::TileMatrix)),
            ),
        ];
        for (name, b) in backends {
            let r = b.run(&c, obj).unwrap();
            assert_eq!(
                r.best_value,
                reference.best_value,
                "{name} diverged from seq on {}",
                obj.name()
            );
            assert_eq!(
                r.best_position,
                reference.best_position,
                "{name} position diverged on {}",
                obj.name()
            );
        }
    }
}

#[test]
fn histories_are_identical_not_just_endpoints() {
    let c = PsoConfig::builder(32, 6)
        .max_iter(60)
        .seed(7)
        .record_history(true)
        .build()
        .unwrap();
    let a = SeqBackend.run(&c, &Sphere).unwrap().history.unwrap();
    let b = GpuBackend::new().run(&c, &Sphere).unwrap().history.unwrap();
    assert_eq!(
        a, b,
        "whole gbest trajectory must match iteration by iteration"
    );
}

#[test]
fn tensor_core_strategy_differs_only_within_f16_tolerance() {
    let c = cfg(64, 8, 80, 3);
    let exact = GpuBackend::new().run(&c, &Sphere).unwrap();
    let tensor = GpuBackend::new()
        .strategy(UpdateStrategy::TensorCore)
        .run(&c, &Sphere)
        .unwrap();
    assert_ne!(
        exact.best_value, tensor.best_value,
        "f16 rounding must be observable"
    );
    // Both converge to the same basin: small absolute errors on Sphere.
    assert!(exact.best_value < 5.0);
    assert!(tensor.best_value < 10.0);
}

#[test]
fn seed_controls_the_whole_trajectory() {
    let a = SeqBackend.run(&cfg(32, 6, 30, 1), &Sphere).unwrap();
    let b = SeqBackend.run(&cfg(32, 6, 30, 1), &Sphere).unwrap();
    let c = SeqBackend.run(&cfg(32, 6, 30, 2), &Sphere).unwrap();
    assert_eq!(a.best_position, b.best_position);
    assert_ne!(a.best_position, c.best_position);
}

#[test]
fn particle_split_multi_gpu_converges_but_may_diverge_from_single() {
    let c = cfg(96, 8, 120, 5);
    let split = MultiGpuBackend::new(4, MultiGpuStrategy::ParticleSplit { sync_every: 10 })
        .run(&c, &Sphere)
        .unwrap();
    assert!(split.best_value < 5.0, "split best = {}", split.best_value);
}
