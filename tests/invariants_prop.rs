//! Property-based integration tests (proptest) over the core invariants:
//! backend equivalence under arbitrary configurations, PSO state
//! invariants, RNG stream properties and f16 rounding laws.

use fastpso_suite::fastpso::gpu::kernels::{POSITION_FLOPS_PER_ELEM, VELOCITY_FLOPS_PER_ELEM};
use fastpso_suite::fastpso::{GpuBackend, PsoBackend, PsoConfig, SeqBackend, UpdateStrategy};
use fastpso_suite::functions::builtins::{Rastrigin, Sphere};
use fastpso_suite::functions::Objective;
use fastpso_suite::gpu_sim::{f16_bits_to_f32, f32_to_f16_bits, through_f16, Device, Phase};
use fastpso_suite::prng::Philox;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Sequential and GPU backends agree bitwise for arbitrary
    /// (small) configurations, seeds and coefficients.
    #[test]
    fn seq_and_gpu_agree_for_arbitrary_configs(
        n in 2usize..40,
        d in 1usize..12,
        iters in 1usize..25,
        seed in any::<u64>(),
        omega in 0.1f32..1.2,
        c in 0.5f32..2.5,
    ) {
        let cfg = PsoConfig::builder(n, d)
            .max_iter(iters)
            .seed(seed)
            .omega(omega)
            .c1(c)
            .c2(c)
            .build()
            .unwrap();
        let a = SeqBackend.run(&cfg, &Sphere).unwrap();
        let b = GpuBackend::new().run(&cfg, &Sphere).unwrap();
        prop_assert_eq!(a.best_value, b.best_value);
        prop_assert_eq!(a.best_position, b.best_position);
    }

    /// The gbest history is monotone non-increasing for any run, and the
    /// final best equals the last history entry.
    #[test]
    fn gbest_is_monotone_for_arbitrary_runs(
        n in 2usize..48,
        d in 1usize..10,
        iters in 2usize..40,
        seed in any::<u64>(),
    ) {
        let cfg = PsoConfig::builder(n, d)
            .max_iter(iters)
            .seed(seed)
            .record_history(true)
            .build()
            .unwrap();
        let r = SeqBackend.run(&cfg, &Rastrigin).unwrap();
        prop_assert_eq!(r.history_is_monotone(), Some(true));
        let h = r.history.unwrap();
        prop_assert_eq!(*h.last().unwrap() as f64, r.best_value);
        // gbest can never beat the mathematical optimum.
        prop_assert!(r.best_value >= Rastrigin.optimum(d).unwrap() - 1e-3);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Philox streams: same (index, domain) always reproduces; distinct
    /// domains decorrelate; outputs lie in [0, 1).
    #[test]
    fn philox_stream_properties(seed in any::<u64>(), idx in any::<u64>(), domain in any::<u64>()) {
        let p = Philox::new(seed);
        let u = p.uniform_at(idx, domain);
        prop_assert!((0.0..1.0).contains(&u));
        prop_assert_eq!(u, Philox::new(seed).uniform_at(idx, domain));
        let other = p.uniform_at(idx, domain.wrapping_add(1));
        // Equality is possible only by 24-bit collision; tolerate but flag
        // structural equality of whole blocks.
        let same_block: Vec<u32> = (0..8).map(|i| p.u32_at(idx.wrapping_add(i), domain)).collect();
        let next_block: Vec<u32> = (0..8).map(|i| p.u32_at(idx.wrapping_add(i), domain.wrapping_add(1))).collect();
        prop_assert_ne!(same_block, next_block);
        let _ = other;
    }

    /// f16 roundtrip laws: idempotent, monotone, sign-preserving, and
    /// within half-ULP relative error for normal values.
    #[test]
    fn f16_rounding_laws(x in -65000.0f32..65000.0) {
        let r = through_f16(x);
        // Idempotence: rounding twice is rounding once.
        prop_assert_eq!(through_f16(r), r);
        // Sign preservation.
        prop_assert_eq!(r.is_sign_negative(), x.is_sign_negative());
        // Bounded relative error for values in the normal f16 range.
        if x.abs() > 6.2e-5 {
            let rel = ((r - x) / x).abs();
            prop_assert!(rel <= 1.0 / 2048.0 + 1e-7, "x={x}, r={r}, rel={rel}");
        }
        // Bits roundtrip exactly.
        let bits = f32_to_f16_bits(x);
        prop_assert_eq!(f32_to_f16_bits(f16_bits_to_f32(bits)), bits);
    }

    /// f16 rounding is monotone: x <= y implies round(x) <= round(y).
    #[test]
    fn f16_rounding_is_monotone(a in -70000.0f32..70000.0, b in -70000.0f32..70000.0) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(through_f16(lo) <= through_f16(hi));
    }

    /// The device argmin reduction matches a sequential scan for arbitrary
    /// inputs, including duplicated minima.
    #[test]
    fn reduction_matches_sequential_scan(values in prop::collection::vec(-1.0e6f32..1.0e6, 1..300)) {
        let dev = Device::v100();
        let r = dev.reduce_min_index(Phase::GBest, &values).unwrap();
        let (mut bi, mut bv) = (0usize, values[0]);
        for (i, &v) in values.iter().enumerate().skip(1) {
            if v < bv {
                bi = i;
                bv = v;
            }
        }
        prop_assert_eq!(r.index, bi);
        prop_assert_eq!(r.value, bv);
    }

    /// Profiler-observed swarm-update work scales *linearly* in `n·d`:
    /// the per-element FLOPs and DRAM bytes of the velocity and position
    /// kernels are constants, independent of the swarm shape, for every
    /// update strategy — there is no padding or super-linear term hiding
    /// in the modeled cost.
    #[test]
    fn swarm_update_work_is_linear_in_problem_size(
        n1 in 2usize..48, d1 in 1usize..12,
        n2 in 2usize..48, d2 in 1usize..12,
        strat_idx in 0usize..4,
        seed in any::<u64>(),
    ) {
        let strategy = [
            UpdateStrategy::GlobalMem,
            UpdateStrategy::SharedMem,
            UpdateStrategy::TensorCore,
            UpdateStrategy::ForLoop,
        ][strat_idx];
        // Per-elem (flops+tensor_flops, dram_read, dram_write) of the single
        // velocity and position launch of a 1-iteration run.
        let quotients = |n: usize, d: usize| {
            let cfg = PsoConfig::builder(n, d).max_iter(1).seed(seed).build().unwrap();
            let b = GpuBackend::new().strategy(strategy);
            b.run(&cfg, &Sphere).unwrap();
            let log = b.profile();
            let elems = (n * d) as u64;
            let per_elem = |prefix: &str| {
                let k = log
                    .kernels
                    .iter()
                    .find(|k| k.name.starts_with(prefix))
                    .unwrap_or_else(|| panic!("no `{prefix}*` record for {strategy:?}"));
                // Element-wise strategies launch one thread per matrix
                // element; the ForLoop baseline one per particle row.
                if strategy == UpdateStrategy::ForLoop {
                    assert_eq!(k.threads, n as u64, "{}: one thread per particle", k.name);
                } else {
                    assert_eq!(k.threads, elems, "{}: one thread per matrix element", k.name);
                }
                for v in [k.flops + k.tensor_flops, k.dram_read_bytes, k.dram_write_bytes] {
                    assert_eq!(v % elems, 0, "{}: cost not a multiple of n·d", k.name);
                }
                [
                    (k.flops + k.tensor_flops) / elems,
                    k.dram_read_bytes / elems,
                    k.dram_write_bytes / elems,
                ]
            };
            (per_elem("velocity_update"), per_elem("position_update"))
        };
        let (vel1, pos1) = quotients(n1, d1);
        let (vel2, pos2) = quotients(n2, d2);
        prop_assert_eq!(vel1, vel2, "velocity per-elem cost must not depend on (n, d)");
        prop_assert_eq!(pos1, pos2, "position per-elem cost must not depend on (n, d)");
        prop_assert_eq!(vel1[0], VELOCITY_FLOPS_PER_ELEM);
        prop_assert_eq!(pos1[0], POSITION_FLOPS_PER_ELEM);
    }

    /// The caching pool never hands two live buffers the same backing.
    #[test]
    fn pool_never_aliases_live_buffers(sizes in prop::collection::vec(1usize..2000, 2..12)) {
        let dev = Device::v100();
        let buffers: Vec<_> = sizes.iter().map(|&s| dev.alloc::<f32>(s).unwrap()).collect();
        let mut ptrs: Vec<*const f32> = buffers.iter().map(|b| b.as_slice().as_ptr()).collect();
        ptrs.sort();
        ptrs.dedup();
        prop_assert_eq!(ptrs.len(), buffers.len());
    }
}

proptest! {
    /// `Display` → `FromStr` round-trips every `UpdateStrategy` variant,
    /// and every documented alias parses to its variant under arbitrary
    /// casing. The accepted alias table lives in the `FromStr` rustdoc.
    #[test]
    fn update_strategy_display_fromstr_round_trips(
        idx in 0usize..5,
        alias_idx in 0usize..4,
        caps in prop::collection::vec(any::<bool>(), 12..13),
    ) {
        let strategy = UpdateStrategy::ALL[idx];
        let printed = strategy.to_string();
        prop_assert_eq!(printed.parse::<UpdateStrategy>().unwrap(), strategy);

        let aliases: &[&str] = match strategy {
            UpdateStrategy::GlobalMem => &["global", "globalmem", "global-mem"],
            UpdateStrategy::SharedMem => &["smem", "shared", "sharedmem", "shared-mem"],
            UpdateStrategy::TensorCore => &["tensor", "tensorcore", "tensor-core", "wmma"],
            UpdateStrategy::ForLoop => &["forloop", "for-loop", "naive"],
            UpdateStrategy::LowComplexity => &["lowcomp", "lowcomplexity", "low-complexity"],
        };
        let alias = aliases[alias_idx % aliases.len()];
        // Parsing is case-insensitive: flip an arbitrary subset to uppercase.
        let mangled: String = alias
            .chars()
            .zip(caps.iter().cycle())
            .map(|(ch, &up)| if up { ch.to_ascii_uppercase() } else { ch })
            .collect();
        prop_assert_eq!(mangled.parse::<UpdateStrategy>().unwrap(), strategy);
    }

    /// `Display` → `FromStr` round-trips every `PlanOp`, including the
    /// parameterised `ring_lbest:k`, and parsing is case-insensitive.
    #[test]
    fn plan_op_display_fromstr_round_trips(
        idx in 0usize..17,
        k in 1usize..64,
        caps in prop::collection::vec(any::<bool>(), 20..21),
    ) {
        use fastpso_suite::fastpso::{MigrationKind, PlanOp};
        let op = match idx {
            0 => PlanOp::Eval,
            1 => PlanOp::PBest,
            2 => PlanOp::Argmin,
            3 => PlanOp::ReduceAdopt,
            4 => PlanOp::RingLbest { k },
            5 => PlanOp::GenWeights,
            6 => PlanOp::Velocity,
            7 => PlanOp::Position,
            8 => PlanOp::FusedSwarmUpdate,
            9 => PlanOp::DeviceSync,
            10 => PlanOp::PersistentKernel,
            11 => PlanOp::SsoUpdate,
            12 => PlanOp::Explosion,
            13 => PlanOp::GuidingSpark,
            14 => PlanOp::Selection,
            15 => PlanOp::Migrate {
                kind: [MigrationKind::Ring, MigrationKind::Star, MigrationKind::Random][k % 3],
                elites: k,
            },
            _ => PlanOp::EliteSelect { islands: k },
        };
        let printed = op.to_string();
        prop_assert_eq!(printed.parse::<PlanOp>().unwrap(), op);
        // Flip an arbitrary subset of characters to uppercase.
        let mangled: String = printed
            .chars()
            .zip(caps.iter().cycle())
            .map(|(ch, &up)| if up { ch.to_ascii_uppercase() } else { ch })
            .collect();
        prop_assert_eq!(mangled.parse::<PlanOp>().unwrap(), op);
        // A bare ring_lbest (no half-width) or a non-numeric one never parses,
        // and neither do malformed island ops.
        prop_assert!("ring_lbest".parse::<PlanOp>().is_err());
        prop_assert!("ring_lbest:x".parse::<PlanOp>().is_err());
        prop_assert!("migrate:ring".parse::<PlanOp>().is_err());
        prop_assert!("migrate:sideways:2".parse::<PlanOp>().is_err());
        prop_assert!("elite_select:x".parse::<PlanOp>().is_err());
    }

    /// `Display` → `FromStr` round-trips every `Topology` — `global`,
    /// `ring_lbest:<k>` and the island grammar
    /// `islands:<m>:<kind>:<every_k>:<elites>` — and malformed or
    /// unknown-key specs are rejected with a diagnostic naming the
    /// grammar. This is the contract the `--topology` CLI flags on
    /// `algo_compare` and `serve_bench` rely on.
    #[test]
    fn topology_display_fromstr_round_trips(
        which in 0usize..3,
        k in 1usize..32,
        m in 2usize..9,
        kind_idx in 0usize..3,
        every_k in 1usize..100,
        elites in 1usize..6,
    ) {
        use fastpso_suite::fastpso::{Migration, MigrationKind, Topology};
        let kind = [MigrationKind::Ring, MigrationKind::Star, MigrationKind::Random][kind_idx];
        let t = match which {
            0 => Topology::Global,
            1 => Topology::Ring { k },
            _ => Topology::Islands {
                islands: m,
                migration: Migration { kind, every_k, elites },
            },
        };
        let printed = t.to_string();
        prop_assert_eq!(printed.parse::<Topology>().unwrap(), t);
        // The migration kind round-trips on its own too.
        prop_assert_eq!(kind.to_string().parse::<MigrationKind>().unwrap(), kind);
        // Unknown keys and truncated island specs never parse, and the
        // error names the accepted grammar.
        for bad in [
            "archipelago",
            "islands",
            "islands:4",
            "islands:4:ring",
            "islands:4:ring:5",
            "islands:4:sideways:5:2",
            "islands:x:ring:5:2",
        ] {
            let err = bad.parse::<Topology>().unwrap_err();
            prop_assert!(
                err.contains("islands:<m>:<ring|star|random>:<every_k>:<elites>")
                    || err.contains("migration kind"),
                "{bad}: {err}"
            );
        }
    }

    /// `Display` → `FromStr` round-trips every `Algorithm` under
    /// arbitrary casing and surrounding whitespace, and unknown keys are
    /// rejected with a diagnostic naming the accepted set.
    #[test]
    fn algorithm_display_fromstr_round_trips(
        idx in 0usize..3,
        caps in prop::collection::vec(any::<bool>(), 4..5),
        pad in 0usize..3,
    ) {
        use fastpso_suite::fastpso::Algorithm;
        let algo = Algorithm::ALL[idx];
        let printed = algo.to_string();
        prop_assert_eq!(printed.parse::<Algorithm>().unwrap(), algo);
        // Case-insensitive, whitespace-trimming parse.
        let mangled: String = printed
            .chars()
            .zip(caps.iter().cycle())
            .map(|(ch, &up)| if up { ch.to_ascii_uppercase() } else { ch })
            .collect();
        let padded = format!("{}{}{}", " ".repeat(pad), mangled, " ".repeat(pad));
        prop_assert_eq!(padded.parse::<Algorithm>().unwrap(), algo);
    }

    /// Strings outside {pso, sso, gfwa} never parse as an `Algorithm`.
    #[test]
    fn algorithm_rejects_unknown_keys(
        chars in prop::collection::vec(0u8..27, 1..12),
    ) {
        use fastpso_suite::fastpso::Algorithm;
        let s: String = chars
            .iter()
            .map(|&c| match c {
                0..=25 => (b'a' + c) as char,
                _ => '-',
            })
            .collect();
        prop_assume!(!["pso", "sso", "gfwa"].contains(&s.as_str()));
        let err = s.parse::<Algorithm>().unwrap_err();
        prop_assert!(err.contains("unknown algorithm"), "{err}");
        prop_assert!(err.contains("pso, sso, gfwa"), "{err}");
    }

    /// `Display` → `FromStr` round-trips every positive `BatchPolicy`,
    /// and zero bounds never parse.
    #[test]
    fn batch_policy_display_fromstr_round_trips(
        jobs in 1usize..10_000,
        elems in 1usize..10_000_000,
    ) {
        use fastpso_suite::fastpso::serve::BatchPolicy;
        let p = BatchPolicy { max_jobs: jobs, max_elems: elems };
        prop_assert_eq!(p.to_string().parse::<BatchPolicy>().unwrap(), p);
        prop_assert!(format!("jobs=0,elems={elems}").parse::<BatchPolicy>().is_err());
        prop_assert!(format!("jobs={jobs},elems=0").parse::<BatchPolicy>().is_err());
        prop_assert!(format!("jobs={jobs}").parse::<BatchPolicy>().is_err());
    }

    /// Strings outside the alias table never parse.
    #[test]
    fn update_strategy_rejects_unknown_names(
        chars in prop::collection::vec(0u8..38, 1..16),
    ) {
        let s: String = chars
            .iter()
            .map(|&c| match c {
                0..=25 => (b'a' + c) as char,
                26..=35 => (b'0' + c - 26) as char,
                36 => '_',
                _ => '-',
            })
            .collect();
        let known = [
            "global", "globalmem", "global-mem",
            "smem", "shared", "sharedmem", "shared-mem",
            "tensor", "tensorcore", "tensor-core", "wmma",
            "forloop", "for-loop", "naive",
            "lowcomp", "lowcomplexity", "low-complexity",
        ];
        prop_assume!(!known.contains(&s.as_str()));
        prop_assert!(s.parse::<UpdateStrategy>().is_err());
    }
}
