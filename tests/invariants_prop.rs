//! Property-based integration tests (proptest) over the core invariants:
//! backend equivalence under arbitrary configurations, PSO state
//! invariants, RNG stream properties and f16 rounding laws.

use fastpso_suite::fastpso::{GpuBackend, PsoBackend, PsoConfig, SeqBackend};
use fastpso_suite::functions::builtins::{Rastrigin, Sphere};
use fastpso_suite::functions::Objective;
use fastpso_suite::gpu_sim::{f16_bits_to_f32, f32_to_f16_bits, through_f16, Device, Phase};
use fastpso_suite::prng::Philox;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Sequential and GPU backends agree bitwise for arbitrary
    /// (small) configurations, seeds and coefficients.
    #[test]
    fn seq_and_gpu_agree_for_arbitrary_configs(
        n in 2usize..40,
        d in 1usize..12,
        iters in 1usize..25,
        seed in any::<u64>(),
        omega in 0.1f32..1.2,
        c in 0.5f32..2.5,
    ) {
        let cfg = PsoConfig::builder(n, d)
            .max_iter(iters)
            .seed(seed)
            .omega(omega)
            .c1(c)
            .c2(c)
            .build()
            .unwrap();
        let a = SeqBackend.run(&cfg, &Sphere).unwrap();
        let b = GpuBackend::new().run(&cfg, &Sphere).unwrap();
        prop_assert_eq!(a.best_value, b.best_value);
        prop_assert_eq!(a.best_position, b.best_position);
    }

    /// The gbest history is monotone non-increasing for any run, and the
    /// final best equals the last history entry.
    #[test]
    fn gbest_is_monotone_for_arbitrary_runs(
        n in 2usize..48,
        d in 1usize..10,
        iters in 2usize..40,
        seed in any::<u64>(),
    ) {
        let cfg = PsoConfig::builder(n, d)
            .max_iter(iters)
            .seed(seed)
            .record_history(true)
            .build()
            .unwrap();
        let r = SeqBackend.run(&cfg, &Rastrigin).unwrap();
        prop_assert_eq!(r.history_is_monotone(), Some(true));
        let h = r.history.unwrap();
        prop_assert_eq!(*h.last().unwrap() as f64, r.best_value);
        // gbest can never beat the mathematical optimum.
        prop_assert!(r.best_value >= Rastrigin.optimum(d).unwrap() - 1e-3);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Philox streams: same (index, domain) always reproduces; distinct
    /// domains decorrelate; outputs lie in [0, 1).
    #[test]
    fn philox_stream_properties(seed in any::<u64>(), idx in any::<u64>(), domain in any::<u64>()) {
        let p = Philox::new(seed);
        let u = p.uniform_at(idx, domain);
        prop_assert!((0.0..1.0).contains(&u));
        prop_assert_eq!(u, Philox::new(seed).uniform_at(idx, domain));
        let other = p.uniform_at(idx, domain.wrapping_add(1));
        // Equality is possible only by 24-bit collision; tolerate but flag
        // structural equality of whole blocks.
        let same_block: Vec<u32> = (0..8).map(|i| p.u32_at(idx.wrapping_add(i), domain)).collect();
        let next_block: Vec<u32> = (0..8).map(|i| p.u32_at(idx.wrapping_add(i), domain.wrapping_add(1))).collect();
        prop_assert_ne!(same_block, next_block);
        let _ = other;
    }

    /// f16 roundtrip laws: idempotent, monotone, sign-preserving, and
    /// within half-ULP relative error for normal values.
    #[test]
    fn f16_rounding_laws(x in -65000.0f32..65000.0) {
        let r = through_f16(x);
        // Idempotence: rounding twice is rounding once.
        prop_assert_eq!(through_f16(r), r);
        // Sign preservation.
        prop_assert_eq!(r.is_sign_negative(), x.is_sign_negative());
        // Bounded relative error for values in the normal f16 range.
        if x.abs() > 6.2e-5 {
            let rel = ((r - x) / x).abs();
            prop_assert!(rel <= 1.0 / 2048.0 + 1e-7, "x={x}, r={r}, rel={rel}");
        }
        // Bits roundtrip exactly.
        let bits = f32_to_f16_bits(x);
        prop_assert_eq!(f32_to_f16_bits(f16_bits_to_f32(bits)), bits);
    }

    /// f16 rounding is monotone: x <= y implies round(x) <= round(y).
    #[test]
    fn f16_rounding_is_monotone(a in -70000.0f32..70000.0, b in -70000.0f32..70000.0) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(through_f16(lo) <= through_f16(hi));
    }

    /// The device argmin reduction matches a sequential scan for arbitrary
    /// inputs, including duplicated minima.
    #[test]
    fn reduction_matches_sequential_scan(values in prop::collection::vec(-1.0e6f32..1.0e6, 1..300)) {
        let dev = Device::v100();
        let r = dev.reduce_min_index(Phase::GBest, &values).unwrap();
        let (mut bi, mut bv) = (0usize, values[0]);
        for (i, &v) in values.iter().enumerate().skip(1) {
            if v < bv {
                bi = i;
                bv = v;
            }
        }
        prop_assert_eq!(r.index, bi);
        prop_assert_eq!(r.value, bv);
    }

    /// The caching pool never hands two live buffers the same backing.
    #[test]
    fn pool_never_aliases_live_buffers(sizes in prop::collection::vec(1usize..2000, 2..12)) {
        let dev = Device::v100();
        let buffers: Vec<_> = sizes.iter().map(|&s| dev.alloc::<f32>(s).unwrap()).collect();
        let mut ptrs: Vec<*const f32> = buffers.iter().map(|b| b.as_slice().as_ptr()).collect();
        ptrs.sort();
        ptrs.dedup();
        prop_assert_eq!(ptrs.len(), buffers.len());
    }
}
