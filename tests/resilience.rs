//! Integration tests of the fault-injection harness (`gpu_sim::fault`) and
//! the engine's resilient execution layer (`fastpso::resilience`).
//!
//! The headline invariant, stated in DESIGN.md: a run with injected
//! transient faults — recovered by retry, checkpoint restore, or device-loss
//! rebalancing — produces a **bit-identical** `gbest` trajectory to the
//! fault-free run under the same seed. Recovery costs modeled time only,
//! charged to the dedicated `Phase::Recovery` breakdown category.

use fastpso_suite::fastpso::resilience::{ResilienceConfig, RetryPolicy, ShardCheckpoint};
use fastpso_suite::fastpso::{
    FallbackBackend, GpuBackend, MultiGpuBackend, MultiGpuStrategy, PsoBackend, PsoConfig,
    SeqBackend, UpdateStrategy,
};
use fastpso_suite::functions::builtins::{Rastrigin, Sphere};
use fastpso_suite::functions::schema::CustomObjective;
use fastpso_suite::gpu_sim::{Device, FaultPlan, Phase};
use fastpso_suite::perf_model::{GpuProfile, LinkProfile};
use proptest::prelude::*;

fn cfg(n: usize, d: usize, iters: usize) -> PsoConfig {
    PsoConfig::builder(n, d)
        .max_iter(iters)
        .seed(4242)
        .record_history(true)
        .build()
        .unwrap()
}

/// Transient launch faults scattered through a run are absorbed by in-place
/// retry; the trajectory is bit-identical to the fault-free run, and the
/// recovery overhead shows up as its own phase in the breakdown.
#[test]
fn transient_faults_recover_bit_identically() {
    let c = cfg(32, 6, 30);
    let clean = GpuBackend::new().run(&c, &Rastrigin).unwrap();

    let backend = GpuBackend::new().resilient(ResilienceConfig::default());
    backend
        .device()
        .set_fault_plan(FaultPlan::new().with_transient_launches([5, 17, 43, 88]));
    let faulted = backend.run(&c, &Rastrigin).unwrap();

    assert_eq!(
        faulted.history, clean.history,
        "gbest trajectory must not change"
    );
    assert_eq!(faulted.best_value, clean.best_value);
    assert_eq!(faulted.best_position, clean.best_position);

    let stats = backend.device().fault_stats();
    assert_eq!(stats.injected, 4, "all four planned faults fired");
    assert!(
        faulted.phase_seconds(Phase::Recovery) > 0.0,
        "retry backoff must be charged to the recovery category"
    );
    assert_eq!(clean.phase_seconds(Phase::Recovery), 0.0);
}

/// A fault-free resilient run (checkpoints on, nothing injected) matches
/// the plain run bit-for-bit: checkpointing costs time, never numerics.
#[test]
fn resilience_layer_is_numerically_transparent() {
    let c = cfg(24, 4, 25);
    let plain = GpuBackend::new().run(&c, &Sphere).unwrap();
    let resilient = GpuBackend::new()
        .resilient(ResilienceConfig::default())
        .run(&c, &Sphere)
        .unwrap();
    assert_eq!(plain.history, resilient.history);
    assert_eq!(plain.best_position, resilient.best_position);
    assert!(
        resilient.phase_seconds(Phase::Recovery) > plain.phase_seconds(Phase::Recovery),
        "periodic checkpoints are visible on the recovery ledger"
    );
}

/// Consecutive faults exhaust the in-place retry budget, forcing a restore
/// from the last checkpoint and a deterministic replay — still bit-identical.
#[test]
fn retry_exhaustion_restores_from_checkpoint() {
    let c = cfg(32, 6, 30);
    let clean = GpuBackend::new().run(&c, &Rastrigin).unwrap();

    let res = ResilienceConfig {
        retry: RetryPolicy {
            max_retries: 1,
            ..RetryPolicy::default()
        },
        checkpoint_every: 4,
        ..ResilienceConfig::default()
    };
    let backend = GpuBackend::new().resilient(res);
    backend
        .device()
        .set_fault_plan(FaultPlan::new().with_transient_launches([50, 51, 52, 53, 54]));
    let faulted = backend.run(&c, &Rastrigin).unwrap();

    assert_eq!(
        faulted.history, clean.history,
        "replay must recompute bit-for-bit"
    );
    assert_eq!(faulted.best_value, clean.best_value);
    assert_eq!(faulted.best_position, clean.best_position);
    assert_eq!(backend.device().fault_stats().injected, 5);
}

/// The acceptance scenario: a 2-device ParticleSplit group with three
/// transient kernel failures on one device and a permanent loss of the
/// other completes via retry + restore + rebalancing onto the survivor,
/// with a bit-identical gbest trajectory.
#[test]
fn device_loss_rebalances_onto_survivor_bit_identically() {
    let c = cfg(32, 6, 24);
    let strategy = MultiGpuStrategy::ParticleSplit { sync_every: 2 };
    let clean = MultiGpuBackend::new(2, strategy)
        .run(&c, &Rastrigin)
        .unwrap();

    let backend = MultiGpuBackend::new(2, strategy).resilient(ResilienceConfig {
        checkpoint_every: 4,
        ..ResilienceConfig::default()
    });
    backend.group().set_fault_plans(vec![
        FaultPlan::new().with_transient_launches([5, 12, 19]),
        FaultPlan::new().with_device_loss_at_launch(40),
    ]);
    let faulted = backend.run(&c, &Rastrigin).unwrap();

    assert_eq!(
        faulted.history, clean.history,
        "rebalanced trajectory must not change"
    );
    assert_eq!(faulted.best_value, clean.best_value);
    assert_eq!(faulted.best_position, clean.best_position);
    assert_eq!(backend.group().lost_devices(), vec![1]);
    assert_eq!(backend.group().survivors(), vec![0]);
    assert!(
        faulted.phase_seconds(Phase::Recovery) > 0.0,
        "restore and rebalancing traffic must be charged to recovery"
    );
}

/// Losing every device is not recoverable — the error surfaces instead of
/// hanging or silently degrading.
#[test]
fn losing_all_devices_is_fatal() {
    let c = cfg(16, 4, 20);
    let backend = MultiGpuBackend::new(2, MultiGpuStrategy::TileMatrix)
        .resilient(ResilienceConfig::default());
    backend.group().set_fault_plans(vec![
        FaultPlan::new().with_device_loss_at_launch(10),
        FaultPlan::new().with_device_loss_at_launch(12),
    ]);
    let err = backend.run(&c, &Sphere).unwrap_err();
    assert!(
        err.lost_device().is_some(),
        "expected a device-loss error, got {err}"
    );
}

/// A shared-memory tile that exceeds the device's shared memory is a
/// permanent launch failure: the resilient backend walks the degradation
/// chain down to the global-memory kernels and completes with the same
/// numbers.
#[test]
fn strategy_degrades_on_permanent_launch_failure() {
    let c = cfg(32, 6, 20);
    let mut profile = GpuProfile::tesla_v100();
    profile.shared_mem_per_sm = 64; // far below one 16x16 tile

    let tiny = Device::with_index(profile.clone(), LinkProfile::pcie3_x16(), 0);
    let plain = GpuBackend::with_device(tiny)
        .strategy(UpdateStrategy::SharedMem)
        .run(&c, &Sphere);
    assert!(
        plain.is_err(),
        "without resilience the tiled launch must fail"
    );

    let tiny = Device::with_index(profile, LinkProfile::pcie3_x16(), 0);
    let degraded = GpuBackend::with_device(tiny)
        .strategy(UpdateStrategy::SharedMem)
        .resilient(ResilienceConfig::default())
        .run(&c, &Sphere)
        .unwrap();
    let reference = GpuBackend::new().run(&c, &Sphere).unwrap();
    assert_eq!(
        degraded.history, reference.history,
        "degraded rung is bit-identical"
    );
    assert_eq!(degraded.best_position, reference.best_position);
    assert!(degraded.phase_seconds(Phase::Recovery) > 0.0);
}

/// A NaN-producing objective cannot poison the swarm: quarantine re-checks
/// and pins, and the result matches the plain GPU run (NaN never wins a
/// pbest comparison either way).
#[test]
fn nan_quarantine_keeps_best_finite() {
    let obj = CustomObjective::new("nan-pocket", (-5.0, 5.0), 2, |x: &[f32]| {
        if x[0] > 2.0 {
            f32::NAN
        } else {
            x.iter().map(|v| v * v).sum()
        }
    });
    let c = cfg(32, 4, 40);
    let plain = GpuBackend::new().run(&c, &obj).unwrap();
    let resilient = GpuBackend::new()
        .resilient(ResilienceConfig::default())
        .run(&c, &obj)
        .unwrap();
    assert!(resilient.best_value.is_finite());
    assert_eq!(resilient.best_value, plain.best_value);
    assert_eq!(resilient.best_position, plain.best_position);
}

/// The backend degradation chain: a dead GPU falls through to the CPU
/// backends instead of failing the optimization.
#[test]
fn backend_chain_falls_through_to_cpu() {
    let c = cfg(24, 4, 30);
    let dead = Device::v100();
    dead.set_fault_plan(FaultPlan::new().with_device_loss_at_launch(1));
    let chain = FallbackBackend::new(vec![
        Box::new(GpuBackend::with_device(dead)),
        Box::new(SeqBackend),
    ]);
    let (result, served_by) = chain.run_with_report(&c, &Sphere).unwrap();
    assert_eq!(served_by, "fastpso-seq");
    let reference = SeqBackend.run(&c, &Sphere).unwrap();
    assert_eq!(result.best_value, reference.best_value);
    assert_eq!(result.best_position, reference.best_position);
}

/// Multi-GPU ParticleSplit with injected faults still reports the modeled
/// concurrent-elapsed semantics (recovery appears in the scaled breakdown).
#[test]
fn recovery_appears_in_multi_gpu_breakdown() {
    let c = cfg(32, 6, 16);
    let backend = MultiGpuBackend::new(2, MultiGpuStrategy::TileMatrix)
        .resilient(ResilienceConfig::default());
    backend.group().set_fault_plans(vec![
        FaultPlan::new().with_transient_launch(7),
        FaultPlan::new(),
    ]);
    let r = backend.run(&c, &Sphere).unwrap();
    let recovery = r.phase_seconds(Phase::Recovery);
    assert!(recovery > 0.0, "breakdown must carry a recovery category");
    assert!(
        recovery < r.elapsed_seconds(),
        "recovery is a slice, not the whole run"
    );
}

/// Exhaustive transparency sweep: a single transient fault at *every*
/// launch ordinal — whatever kernel it lands on — must leave the trajectory
/// bit-identical. This is what caught the swarm-update retry hazard (the
/// velocity half mutates in place, so the update must be retried
/// half-by-half, never as one op).
#[test]
fn every_fault_ordinal_is_bit_transparent() {
    let c = cfg(32, 6, 12);
    let clean = GpuBackend::new().run(&c, &Rastrigin).unwrap();
    for ord in 1..=60u64 {
        let b = GpuBackend::new().resilient(ResilienceConfig::default());
        b.device()
            .set_fault_plan(FaultPlan::new().with_transient_launch(ord));
        let r = b.run(&c, &Rastrigin).unwrap();
        assert_eq!(
            r.history, clean.history,
            "single-GPU diverged at launch ordinal {ord}"
        );
    }

    let strategy = MultiGpuStrategy::ParticleSplit { sync_every: 2 };
    let clean = MultiGpuBackend::new(2, strategy)
        .run(&c, &Rastrigin)
        .unwrap();
    for dev in 0..2usize {
        for ord in 1..=40u64 {
            let b = MultiGpuBackend::new(2, strategy).resilient(ResilienceConfig::default());
            let mut plans = vec![FaultPlan::new(), FaultPlan::new()];
            plans[dev] = FaultPlan::new().with_transient_launch(ord);
            b.group().set_fault_plans(plans);
            let r = b.run(&c, &Rastrigin).unwrap();
            assert_eq!(
                r.history, clean.history,
                "multi-GPU diverged at device {dev}, launch ordinal {ord}"
            );
        }
    }
}

fn bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Checkpoint capture → restore round-trips arbitrary swarm states
    /// exactly, bit-for-bit — including NaN and infinity payloads.
    #[test]
    fn checkpoint_roundtrips_arbitrary_states(
        pos in proptest::collection::vec(any::<f32>(), 8..9),
        vel in proptest::collection::vec(any::<f32>(), 8..9),
        errors in proptest::collection::vec(any::<f32>(), 4..5),
        pbest_err in proptest::collection::vec(any::<f32>(), 4..5),
        pbest_pos in proptest::collection::vec(any::<f32>(), 8..9),
        gbest_pos in proptest::collection::vec(any::<f32>(), 2..3),
        gbest_err in any::<f32>(),
    ) {
        use fastpso_suite::fastpso::gpu::kernels::Shard;
        let dev = Device::v100();
        let mut shard = Shard::alloc(&dev, 0, 4, 2).unwrap();
        shard.pos.as_mut_slice().copy_from_slice(&pos);
        shard.vel.as_mut_slice().copy_from_slice(&vel);
        shard.errors.as_mut_slice().copy_from_slice(&errors);
        shard.pbest_err.as_mut_slice().copy_from_slice(&pbest_err);
        shard.pbest_pos.as_mut_slice().copy_from_slice(&pbest_pos);
        shard.gbest_pos.as_mut_slice().copy_from_slice(&gbest_pos);
        shard.gbest_err = gbest_err;

        let cp = ShardCheckpoint::capture(&shard);

        // Trash every buffer, then restore.
        shard.pos.as_mut_slice().fill(0.5);
        shard.vel.as_mut_slice().fill(0.5);
        shard.errors.as_mut_slice().fill(0.5);
        shard.pbest_err.as_mut_slice().fill(0.5);
        shard.pbest_pos.as_mut_slice().fill(0.5);
        shard.gbest_pos.as_mut_slice().fill(0.5);
        shard.gbest_err = 0.5;
        cp.restore_into(&dev, &mut shard, &RetryPolicy::default()).unwrap();

        prop_assert_eq!(bits(shard.pos.as_slice()), bits(&pos));
        prop_assert_eq!(bits(shard.vel.as_slice()), bits(&vel));
        prop_assert_eq!(bits(shard.errors.as_slice()), bits(&errors));
        prop_assert_eq!(bits(shard.pbest_err.as_slice()), bits(&pbest_err));
        prop_assert_eq!(bits(shard.pbest_pos.as_slice()), bits(&pbest_pos));
        prop_assert_eq!(bits(shard.gbest_pos.as_slice()), bits(&gbest_pos));
        prop_assert_eq!(shard.gbest_err.to_bits(), gbest_err.to_bits());
    }
}
