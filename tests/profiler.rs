//! Integration tests of the kernel-level profiler: record completeness
//! (every launch site carries a name and sane geometry), the chrome://
//! tracing exporter round-trip, the nvprof-style summary, ring-buffer
//! truncation reporting, and multi-device merging.

use fastpso_suite::fastpso::{
    GpuBackend, MultiGpuBackend, MultiGpuStrategy, PsoBackend, PsoConfig, Topology, UpdateStrategy,
};
use fastpso_suite::functions::builtins::Sphere;
use fastpso_suite::gpu_sim::{
    chrome_trace_event_count, chrome_trace_json, gpu_summary, Device, KernelDesc, Phase,
    ProfilerLog,
};
use fastpso_suite::perf_model::{parse_json, GpuProfile};
use std::collections::BTreeSet;

fn cfg(iters: usize) -> PsoConfig {
    PsoConfig::builder(48, 6)
        .max_iter(iters)
        .seed(11)
        .build()
        .unwrap()
}

fn run_log(strategy: UpdateStrategy) -> ProfilerLog {
    let b = GpuBackend::new().strategy(strategy);
    b.run(&cfg(4), &Sphere).unwrap();
    b.profile()
}

/// Every launch site in the engine is named: no record carries an empty
/// or placeholder name, and the expected pipeline kernels all appear.
#[test]
fn every_launch_site_is_named() {
    let mut seen = BTreeSet::new();
    for (strategy, vel, pos) in [
        (
            UpdateStrategy::GlobalMem,
            "velocity_update",
            "position_update",
        ),
        (
            UpdateStrategy::SharedMem,
            "velocity_update_smem",
            "position_update_smem",
        ),
        (
            UpdateStrategy::TensorCore,
            "velocity_update_wmma",
            "position_update_wmma",
        ),
        (
            UpdateStrategy::ForLoop,
            "velocity_update_forloop",
            "position_update_forloop",
        ),
    ] {
        let log = run_log(strategy);
        for k in &log.kernels {
            assert!(!k.name.is_empty(), "{strategy:?}: unnamed kernel record");
            assert_ne!(k.name, "<unnamed>", "{strategy:?}: placeholder kernel name");
            seen.insert(k.name);
        }
        for expected in [
            "init_positions",
            "init_velocities",
            "init_best_state",
            "evaluate_swarm",
            "pbest_update",
            "reduce_pass0",
            "gen_l_weights",
            "gen_g_weights",
            vel,
            pos,
        ] {
            assert!(
                log.launches_of(expected) > 0,
                "{strategy:?}: kernel `{expected}` missing from the profile; saw {seen:?}"
            );
        }
    }

    // The ring topology's neighbourhood reduction is named too.
    let b = GpuBackend::new();
    let ring = PsoConfig::builder(48, 6)
        .max_iter(4)
        .seed(11)
        .topology(Topology::Ring { k: 1 })
        .build()
        .unwrap();
    b.run(&ring, &Sphere).unwrap();
    assert!(b.profile().launches_of("ring_lbest") > 0);
}

/// Geometry and derived metrics of every record are sane: non-zero
/// grid/block, positive modeled duration, occupancy in (0, 1], bandwidth
/// fraction in [0, 1), and start times non-decreasing (records are in
/// charge order on a single device).
#[test]
fn records_carry_sane_geometry_and_metrics() {
    let log = run_log(UpdateStrategy::SharedMem);
    assert!(log.is_complete());
    assert!(!log.is_empty());
    let mut last_start = 0.0f64;
    for k in &log.kernels {
        assert!(k.grid.iter().all(|&g| g >= 1), "{}: zero grid dim", k.name);
        assert!(
            k.block.iter().all(|&b| b >= 1),
            "{}: zero block dim",
            k.name
        );
        assert!(k.threads > 0, "{}: zero threads", k.name);
        assert!(k.duration_s > 0.0, "{}: zero modeled duration", k.name);
        assert!(
            k.occupancy > 0.0 && k.occupancy <= 1.0,
            "{}: occupancy {} out of range",
            k.name,
            k.occupancy
        );
        assert!(
            (0.0..1.0).contains(&k.bw_fraction),
            "{}: bandwidth fraction {} out of range",
            k.name,
            k.bw_fraction
        );
        assert!(
            k.start_s >= last_start,
            "{}: records out of charge order",
            k.name
        );
        last_start = k.start_s;
    }
}

/// The chrome://tracing exporter emits valid JSON whose event count
/// round-trips the log's record count exactly.
#[test]
fn chrome_trace_is_valid_json_and_round_trips_event_count() {
    let log = run_log(UpdateStrategy::GlobalMem);
    let json = chrome_trace_json(&log);
    let value = parse_json(&json).expect("exporter must emit valid JSON");
    assert!(value.get("traceEvents").is_some());
    assert_eq!(
        chrome_trace_event_count(&json).expect("well-formed trace"),
        log.len(),
        "every kernel/alloc/transfer record becomes exactly one trace event"
    );
}

/// The nvprof-style summary lists every kernel by name with its call
/// count, hottest first.
#[test]
fn gpu_summary_lists_every_kernel() {
    let log = run_log(UpdateStrategy::GlobalMem);
    let summary = gpu_summary(&log, &GpuProfile::tesla_v100());
    assert!(summary.contains("GPU activities"));
    for (name, _) in log.counts_by_name() {
        assert!(summary.contains(name), "summary missing kernel `{name}`");
    }
    assert!(
        !summary.contains("evicted"),
        "a complete log must not warn about truncation"
    );
}

/// Ring-buffer overflow is *flagged*, never silent: the snapshot reports
/// the drop counts, `is_complete()` goes false, and the summary carries a
/// warning line.
#[test]
fn ring_buffer_truncation_is_flagged_not_silent() {
    let dev = Device::v100();
    dev.set_profiler_capacity(4, 2, 2);
    for _ in 0..10 {
        dev.begin_launch().unwrap();
        dev.charge_kernel(&KernelDesc::simple("spin", Phase::Eval, 1, 4, 4, 64));
    }
    let log = dev.profiler();
    assert!(!log.is_complete());
    assert_eq!(log.kernels.len(), 4, "ring keeps the newest records");
    assert_eq!(log.dropped_kernels, 6);
    assert_eq!(log.dropped_total(), 6);
    let summary = gpu_summary(&log, &GpuProfile::tesla_v100());
    assert!(
        summary.contains("evicted 6 records"),
        "summary must surface the drop:\n{summary}"
    );
}

/// `run()` resets the profiler along with the timeline: the log covers
/// exactly the most recent run, so two identical runs profile identically.
#[test]
fn profile_covers_exactly_the_last_run() {
    let b = GpuBackend::new();
    b.run(&cfg(3), &Sphere).unwrap();
    let first = b.profile();
    b.run(&cfg(3), &Sphere).unwrap();
    let second = b.profile();
    assert_eq!(first.kernels.len(), second.kernels.len());
    assert_eq!(first.counts_by_name(), second.counts_by_name());
}

/// A multi-device run merges per-device logs with device indices intact.
#[test]
fn multi_device_profiles_merge_with_device_indices() {
    let b = MultiGpuBackend::new(2, MultiGpuStrategy::ParticleSplit { sync_every: 2 });
    b.run(&cfg(4), &Sphere).unwrap();
    let log = b.group().merged_profiler();
    assert!(log.is_complete());
    let devices: BTreeSet<usize> = log.kernels.iter().map(|k| k.device).collect();
    assert_eq!(
        devices,
        BTreeSet::from([0, 1]),
        "both devices must contribute records"
    );
    // The merged trace is still a valid chrome trace (pid = device).
    let json = chrome_trace_json(&log);
    assert_eq!(chrome_trace_event_count(&json).unwrap(), log.len());
}
