//! Optimization-quality integration tests: every implementation (the
//! paper's own variants and the four baselines) must genuinely optimize,
//! histories must be monotone, and the paper's quality ordering — clamped
//! decaying-inertia implementations beat the Python-library defaults —
//! must hold.

use fastpso_suite::baselines::{GpuPsoBaseline, HGpuPsoBaseline, PySwarmsLike, ScikitOptLike};
use fastpso_suite::fastpso::{
    AttractorSemantics, GpuBackend, ParBackend, PsoBackend, PsoConfig, SeqBackend,
};
use fastpso_suite::functions::builtins::{Easom, Griewank, Levy, Rastrigin, Rosenbrock, Sphere};
use fastpso_suite::functions::Objective;

fn cfg(n: usize, d: usize, iters: usize) -> PsoConfig {
    PsoConfig::builder(n, d)
        .max_iter(iters)
        .seed(77)
        .record_history(true)
        .build()
        .unwrap()
}

#[test]
fn every_implementation_improves_over_initialization() {
    let c = cfg(64, 10, 150);
    let impls: Vec<Box<dyn PsoBackend>> = vec![
        Box::new(SeqBackend),
        Box::new(ParBackend),
        Box::new(GpuBackend::new()),
        Box::new(GpuPsoBaseline::new()),
        Box::new(HGpuPsoBaseline::new()),
        Box::new(PySwarmsLike),
        Box::new(ScikitOptLike),
    ];
    for b in impls {
        let r = b.run(&c, &Sphere).unwrap();
        let h = r.history.as_ref().unwrap();
        assert!(
            *h.last().unwrap() < h[0],
            "{} never improved: {} -> {}",
            b.name(),
            h[0],
            h.last().unwrap()
        );
        assert_eq!(r.history_is_monotone(), Some(true), "{}", b.name());
        assert!(r.best_value.is_finite(), "{}", b.name());
    }
}

#[test]
fn fastpso_converges_deep_on_every_smooth_landscape() {
    let c = cfg(128, 8, 400);
    for (obj, threshold) in [
        (&Sphere as &dyn Objective, 0.01),
        (&Rosenbrock, 10.0),
        (&Levy, 0.5),
    ] {
        let r = GpuBackend::new().run(&c, obj).unwrap();
        assert!(
            r.best_value < threshold,
            "{}: best {} above {threshold}",
            obj.name(),
            r.best_value
        );
    }
}

#[test]
fn multimodal_landscapes_still_improve_substantially() {
    let c = cfg(128, 8, 400);
    for obj in [&Rastrigin as &dyn Objective, &Griewank] {
        let r = GpuBackend::new().run(&c, obj).unwrap();
        let h = r.history.unwrap();
        assert!(
            h[0] / *h.last().unwrap() > 5.0 || *h.last().unwrap() < 1.0,
            "{}: {} -> {}",
            obj.name(),
            h[0],
            h.last().unwrap()
        );
    }
}

#[test]
fn clamped_decaying_swarm_beats_python_defaults() {
    // Table 2's quality shape at an integration-test scale.
    let c = cfg(96, 24, 500);
    let fast = GpuBackend::new().run(&c, &Sphere).unwrap().best_value;
    let py = PySwarmsLike.run(&c, &Sphere).unwrap().best_value;
    let sk = ScikitOptLike.run(&c, &Sphere).unwrap().best_value;
    assert!(
        fast * 5.0 < py && fast * 5.0 < sk,
        "fastpso {fast} must clearly beat pyswarms {py} / scikit-opt {sk}"
    );
}

#[test]
fn easom_needle_is_found_in_low_dimensions() {
    // The classic 2-D Easom: minimum −1 at (π, π). A healthy swarm finds
    // it; this guards the evaluation function and the optimizer together.
    let c = PsoConfig::builder(256, 2)
        .max_iter(300)
        .seed(5)
        .build()
        .unwrap();
    let r = GpuBackend::new().run(&c, &Easom).unwrap();
    assert!(
        r.best_value < -0.9,
        "2-D Easom needle not found: best = {}",
        r.best_value
    );
    let x = &r.best_position;
    assert!((x[0] - std::f32::consts::PI).abs() < 0.2);
    assert!((x[1] - std::f32::consts::PI).abs() < 0.2);
}

#[test]
fn scalar_broadcast_semantics_run_but_explore_differently() {
    // The paper's Equation (1) literal reading (ablation): it still runs
    // and produces a different trajectory than standard semantics.
    let base = cfg(48, 8, 100);
    let standard = SeqBackend.run(&base, &Sphere).unwrap();
    let mut literal_cfg = base.clone();
    literal_cfg.semantics = AttractorSemantics::ScalarBroadcast;
    let literal = SeqBackend.run(&literal_cfg, &Sphere).unwrap();
    assert_ne!(standard.best_position, literal.best_position);
    assert!(literal.best_value.is_finite());
    assert!(
        standard.best_value <= literal.best_value,
        "standard semantics should not lose to the scalar-broadcast reading on Sphere"
    );
}

#[test]
fn unbounded_velocity_hurts_quality() {
    let bounded = cfg(64, 16, 300);
    let mut unbounded = bounded.clone();
    unbounded.velocity_bound = fastpso_suite::fastpso::VelocityBound::Unbounded;
    let b = SeqBackend.run(&bounded, &Sphere).unwrap().best_value;
    let u = SeqBackend.run(&unbounded, &Sphere).unwrap().best_value;
    assert!(b < u, "bounded {b} should beat unbounded {u}");
}
