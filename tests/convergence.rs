//! Optimization-quality integration tests: every implementation (the
//! paper's own variants and the four baselines) must genuinely optimize,
//! histories must be monotone, and the paper's quality ordering — clamped
//! decaying-inertia implementations beat the Python-library defaults —
//! must hold.

use fastpso_suite::baselines::{GpuPsoBaseline, HGpuPsoBaseline, PySwarmsLike, ScikitOptLike};
use fastpso_suite::fastpso::{
    Algorithm, AttractorSemantics, GpuBackend, Migration, MigrationKind, ParBackend, PsoBackend,
    PsoConfig, SeqBackend, Topology,
};
use fastpso_suite::functions::builtins::{
    Easom, Griewank, Levy, Qap, Rastrigin, Rosenbrock, Sphere,
};
use fastpso_suite::functions::Objective;

fn cfg(n: usize, d: usize, iters: usize) -> PsoConfig {
    PsoConfig::builder(n, d)
        .max_iter(iters)
        .seed(77)
        .record_history(true)
        .build()
        .unwrap()
}

#[test]
fn every_implementation_improves_over_initialization() {
    let c = cfg(64, 10, 150);
    let impls: Vec<Box<dyn PsoBackend>> = vec![
        Box::new(SeqBackend),
        Box::new(ParBackend),
        Box::new(GpuBackend::new()),
        Box::new(GpuPsoBaseline::new()),
        Box::new(HGpuPsoBaseline::new()),
        Box::new(PySwarmsLike),
        Box::new(ScikitOptLike),
    ];
    for b in impls {
        let r = b.run(&c, &Sphere).unwrap();
        let h = r.history.as_ref().unwrap();
        assert!(
            *h.last().unwrap() < h[0],
            "{} never improved: {} -> {}",
            b.name(),
            h[0],
            h.last().unwrap()
        );
        assert_eq!(r.history_is_monotone(), Some(true), "{}", b.name());
        assert!(r.best_value.is_finite(), "{}", b.name());
    }
}

#[test]
fn fastpso_converges_deep_on_every_smooth_landscape() {
    let c = cfg(128, 8, 400);
    for (obj, threshold) in [
        (&Sphere as &dyn Objective, 0.01),
        (&Rosenbrock, 10.0),
        (&Levy, 0.5),
    ] {
        let r = GpuBackend::new().run(&c, obj).unwrap();
        assert!(
            r.best_value < threshold,
            "{}: best {} above {threshold}",
            obj.name(),
            r.best_value
        );
    }
}

#[test]
fn multimodal_landscapes_still_improve_substantially() {
    let c = cfg(128, 8, 400);
    for obj in [&Rastrigin as &dyn Objective, &Griewank] {
        let r = GpuBackend::new().run(&c, obj).unwrap();
        let h = r.history.unwrap();
        assert!(
            h[0] / *h.last().unwrap() > 5.0 || *h.last().unwrap() < 1.0,
            "{}: {} -> {}",
            obj.name(),
            h[0],
            h.last().unwrap()
        );
    }
}

#[test]
fn clamped_decaying_swarm_beats_python_defaults() {
    // Table 2's quality shape at an integration-test scale.
    let c = cfg(96, 24, 500);
    let fast = GpuBackend::new().run(&c, &Sphere).unwrap().best_value;
    let py = PySwarmsLike.run(&c, &Sphere).unwrap().best_value;
    let sk = ScikitOptLike.run(&c, &Sphere).unwrap().best_value;
    assert!(
        fast * 5.0 < py && fast * 5.0 < sk,
        "fastpso {fast} must clearly beat pyswarms {py} / scikit-opt {sk}"
    );
}

#[test]
fn easom_needle_is_found_in_low_dimensions() {
    // The classic 2-D Easom: minimum −1 at (π, π). A healthy swarm finds
    // it; this guards the evaluation function and the optimizer together.
    let c = PsoConfig::builder(256, 2)
        .max_iter(300)
        .seed(5)
        .build()
        .unwrap();
    let r = GpuBackend::new().run(&c, &Easom).unwrap();
    assert!(
        r.best_value < -0.9,
        "2-D Easom needle not found: best = {}",
        r.best_value
    );
    let x = &r.best_position;
    assert!((x[0] - std::f32::consts::PI).abs() < 0.2);
    assert!((x[1] - std::f32::consts::PI).abs() < 0.2);
}

#[test]
fn scalar_broadcast_semantics_run_but_explore_differently() {
    // The paper's Equation (1) literal reading (ablation): it still runs
    // and produces a different trajectory than standard semantics.
    let base = cfg(48, 8, 100);
    let standard = SeqBackend.run(&base, &Sphere).unwrap();
    let mut literal_cfg = base.clone();
    literal_cfg.semantics = AttractorSemantics::ScalarBroadcast;
    let literal = SeqBackend.run(&literal_cfg, &Sphere).unwrap();
    assert_ne!(standard.best_position, literal.best_position);
    assert!(literal.best_value.is_finite());
    assert!(
        standard.best_value <= literal.best_value,
        "standard semantics should not lose to the scalar-broadcast reading on Sphere"
    );
}

/// Best value over `evals` uniform samples of `obj`'s domain — the
/// random-search floor the new engines must beat at equal modeled budget.
fn random_search(obj: &dyn Objective, dim: usize, evals: u64, seed: u64) -> f32 {
    fn splitmix64(mut z: u64) -> u64 {
        z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
    let (lo, hi) = obj.domain();
    let mut best = f32::INFINITY;
    let mut x = vec![0.0f32; dim];
    for e in 0..evals {
        for (c, slot) in x.iter_mut().enumerate() {
            let h =
                splitmix64(seed ^ (e * dim as u64 + c as u64).wrapping_mul(0xA076_1D64_78BD_642F));
            *slot = lo + (h >> 40) as f32 / (1u64 << 24) as f32 * (hi - lo);
        }
        best = best.min(obj.eval(&x));
    }
    best
}

/// Iterations `algo` affords at the modeled device-second budget of a PSO
/// run of `iters` iterations, per the V100 cost predictor — the same
/// equal-budget accounting the `algo_compare` bench uses.
fn budget_iters(algo: Algorithm, n: usize, d: usize, iters: usize) -> usize {
    let p = perf_model::CostPredictor::v100();
    let per_iter = |a: Algorithm| {
        p.base_s(
            &perf_model::JobShape::new(n as u64, d as u64, 1, "global").algorithm(&a.to_string()),
        )
    };
    let budget = per_iter(Algorithm::Pso) * iters as f64;
    ((budget / per_iter(algo)).floor() as usize).max(1)
}

#[test]
fn sso_beats_random_search_on_qap_at_equal_modeled_budget() {
    // Discrete SSO on the permutation-encoded QAP: its index-sampling
    // update (copy gbest / copy pbest / keep / resample) is built for
    // exactly this landscape. The modeled budget is a 64x12 PSO run of
    // 200 iterations; SSO's cheaper schedule affords it more iterations,
    // and random search gets the same evaluation count SSO used.
    let (n, d, pso_iters) = (64, 12, 200);
    let iters = budget_iters(Algorithm::Sso, n, d, pso_iters);
    assert!(
        iters > pso_iters,
        "SSO must afford more iterations than PSO"
    );
    let c = PsoConfig::builder(n, d)
        .max_iter(iters)
        .seed(77)
        .record_history(true)
        .build()
        .unwrap();
    let r = GpuBackend::new()
        .algorithm(Algorithm::Sso)
        .run(&c, &Qap)
        .unwrap();
    assert_eq!(r.history_is_monotone(), Some(true));
    let evals = (n * iters) as u64;
    let floor = random_search(&Qap, d, evals, 77);
    assert!(
        (r.best_value as f32) < floor,
        "SSO best {} must beat random search {floor} at {evals} evals",
        r.best_value
    );
}

#[test]
fn gfwa_beats_random_search_on_high_dim_multimodal_at_equal_modeled_budget() {
    // GFWA on 32-D Rastrigin: the explosion cloud plus the guiding spark
    // must out-search a random sampler that receives every objective
    // evaluation GFWA spent (fireworks + 8 sparks + guide per firework).
    let (n, d, pso_iters) = (48, 32, 300);
    let iters = budget_iters(Algorithm::Gfwa, n, d, pso_iters);
    assert!(iters < pso_iters, "GFWA's spark cloud must price above PSO");
    let c = PsoConfig::builder(n, d)
        .max_iter(iters)
        .seed(77)
        .record_history(true)
        .build()
        .unwrap();
    let r = GpuBackend::new()
        .algorithm(Algorithm::Gfwa)
        .run(&c, &Rastrigin)
        .unwrap();
    assert_eq!(r.history_is_monotone(), Some(true));
    let evals = (n * iters * 10) as u64;
    let floor = random_search(&Rastrigin, d, evals, 77);
    assert!(
        (r.best_value as f32) < floor,
        "GFWA best {} must beat random search {floor} at {evals} evals",
        r.best_value
    );
}

/// Modeled cost of `iters` iterations of topology `t` at `n`×`d` — the
/// same V100 pricing `island_bench` uses, including the island gather and
/// migration launches.
fn modeled_s(n: usize, d: usize, iters: usize, t: Topology) -> f64 {
    let mut shape = perf_model::JobShape::new(n as u64, d as u64, iters as u64, "global");
    if let Topology::Islands { islands, migration } = t {
        shape = shape.islands(islands as u64, migration.every_k as u64);
    }
    perf_model::CostPredictor::v100().base_s(&shape)
}

/// Largest iteration count whose modeled cost under topology `t` stays
/// within the budget of a `budget_iters`-iteration global-topology run.
fn island_iters_within_budget(n: usize, d: usize, budget_iters: usize, t: Topology) -> usize {
    let budget = modeled_s(n, d, budget_iters, Topology::Global);
    let mut iters = 1;
    while modeled_s(n, d, iters + 1, t) <= budget {
        iters += 1;
    }
    iters
}

/// Golden pinning the islands-vs-single-swarm quality comparison. The
/// free-standing, scale-selectable version of this experiment is the
/// `island_bench` binary; this is the committed CI gate.
const ISLAND_GOLDEN: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/results/island_compare.md");

#[test]
fn islands_beat_the_single_swarm_at_equal_modeled_budget() {
    // The island model's exploration claim, pinned: 4 islands exchanging
    // 4 elites every 60 iterations beat one fully-connected swarm on both
    // multimodal landscapes, after paying for their own migration and
    // elite-select launches out of the same modeled device-second budget.
    // The horizon is long (1500 single-swarm iterations) because the
    // advantage appears only once the single swarm has converged as far
    // as it ever will.
    let (n, budget_iters) = (128, 1500);
    let islands = Topology::Islands {
        islands: 4,
        migration: Migration {
            kind: MigrationKind::Random,
            every_k: 60,
            elites: 4,
        },
    };
    let mut md = String::from(
        "# Islands vs single swarm at equal modeled budget (pinned)\n\n\
         Produced by `tests/convergence.rs`\n\
         (`islands_beat_the_single_swarm_at_equal_modeled_budget`).\n\
         Regenerate: `UPDATE_GOLDEN=1 cargo test --test convergence islands`.\n\n\
         | objective | dim | setup | iterations | migrations | best |\n\
         |---|---:|---|---:|---:|---:|\n",
    );
    for (name, obj, d) in [
        ("rastrigin", &Rastrigin as &dyn Objective, 32),
        ("qap", &Qap, 12),
    ] {
        let run = |topology: Topology, iters: usize| {
            let cfg = PsoConfig::builder(n, d)
                .max_iter(iters)
                .seed(42)
                .topology(topology)
                .build()
                .unwrap();
            GpuBackend::new().run(&cfg, obj).unwrap()
        };
        let single = run(Topology::Global, budget_iters);
        let iters = island_iters_within_budget(n, d, budget_iters, islands);
        assert!(
            iters < budget_iters,
            "{name}: island launches must price above the plain schedule"
        );
        let isl = run(islands, iters);
        assert_eq!(single.migrations, 0);
        assert!(isl.migrations > 0, "{name}: islands must migrate");
        assert!(
            isl.best_value <= single.best_value,
            "{name}: islands {} must beat the equal-budget single swarm {}",
            isl.best_value,
            single.best_value
        );
        md.push_str(&format!(
            "| {name} | {d} | single swarm (global) | {budget_iters} | 0 | {:.4} |\n",
            single.best_value
        ));
        md.push_str(&format!(
            "| {name} | {d} | {islands} | {iters} | {} | {:.4} |\n",
            isl.migrations, isl.best_value
        ));
    }
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(ISLAND_GOLDEN, &md).expect("write island golden");
        return;
    }
    let expected = std::fs::read_to_string(ISLAND_GOLDEN).expect(
        "island golden missing; regenerate with \
         UPDATE_GOLDEN=1 cargo test --test convergence islands",
    );
    assert_eq!(
        md, expected,
        "island comparison drifted from the recorded golden (if intentional: \
         UPDATE_GOLDEN=1 cargo test --test convergence islands)"
    );
}

#[test]
fn unbounded_velocity_hurts_quality() {
    let bounded = cfg(64, 16, 300);
    let mut unbounded = bounded.clone();
    unbounded.velocity_bound = fastpso_suite::fastpso::VelocityBound::Unbounded;
    let b = SeqBackend.run(&bounded, &Sphere).unwrap().best_value;
    let u = SeqBackend.run(&unbounded, &Sphere).unwrap().best_value;
    assert!(b < u, "bounded {b} should beat unbounded {u}");
}
