//! Integration tests for the library extensions beyond the paper's core:
//! ring topology, early termination, and their interaction with the
//! backend-equivalence guarantee.

use fastpso_suite::fastpso::{
    GpuBackend, Migration, MigrationKind, MultiGpuBackend, MultiGpuStrategy, ParBackend,
    PsoBackend, PsoConfig, PsoError, SeqBackend, Topology, UpdateStrategy,
};
use fastpso_suite::functions::builtins::{Rastrigin, Sphere};

fn islands(islands: usize, kind: MigrationKind, every_k: usize, elites: usize) -> Topology {
    Topology::Islands {
        islands,
        migration: Migration {
            kind,
            every_k,
            elites,
        },
    }
}

#[test]
fn ring_topology_is_bit_identical_across_backends() {
    let cfg = PsoConfig::builder(48, 8)
        .max_iter(60)
        .seed(17)
        .topology(Topology::Ring { k: 2 })
        .build()
        .unwrap();
    let seq = SeqBackend.run(&cfg, &Rastrigin).unwrap();
    let par = ParBackend.run(&cfg, &Rastrigin).unwrap();
    let gpu = GpuBackend::new().run(&cfg, &Rastrigin).unwrap();
    let smem = GpuBackend::new()
        .strategy(UpdateStrategy::SharedMem)
        .run(&cfg, &Rastrigin)
        .unwrap();
    assert_eq!(seq.best_value, par.best_value);
    assert_eq!(seq.best_value, gpu.best_value);
    assert_eq!(seq.best_value, smem.best_value);
    assert_eq!(seq.best_position, gpu.best_position);
}

#[test]
fn ring_topology_changes_the_trajectory_and_still_converges() {
    let star = PsoConfig::builder(96, 8)
        .max_iter(250)
        .seed(3)
        .build()
        .unwrap();
    let ring = PsoConfig::builder(96, 8)
        .max_iter(250)
        .seed(3)
        .topology(Topology::Ring { k: 1 })
        .build()
        .unwrap();
    let a = SeqBackend.run(&star, &Rastrigin).unwrap();
    let b = SeqBackend.run(&ring, &Rastrigin).unwrap();
    assert_ne!(a.best_position, b.best_position, "topology must matter");
    assert!(b.best_value < 40.0, "ring run diverged: {}", b.best_value);
}

#[test]
fn full_ring_window_equals_global_topology() {
    // k >= n/2 makes every neighborhood the whole swarm: identical to star.
    let n = 24;
    let star = PsoConfig::builder(n, 6)
        .max_iter(40)
        .seed(9)
        .build()
        .unwrap();
    let ring = PsoConfig::builder(n, 6)
        .max_iter(40)
        .seed(9)
        .topology(Topology::Ring { k: n / 2 })
        .build()
        .unwrap();
    let a = SeqBackend.run(&star, &Sphere).unwrap();
    let b = SeqBackend.run(&ring, &Sphere).unwrap();
    assert_eq!(a.best_value, b.best_value);
    assert_eq!(a.best_position, b.best_position);
}

#[test]
fn island_topology_is_bit_identical_across_backends() {
    let cfg = PsoConfig::builder(48, 8)
        .max_iter(60)
        .seed(17)
        .topology(islands(4, MigrationKind::Ring, 5, 2))
        .build()
        .unwrap();
    let seq = SeqBackend.run(&cfg, &Rastrigin).unwrap();
    let par = ParBackend.run(&cfg, &Rastrigin).unwrap();
    let gpu = GpuBackend::new().run(&cfg, &Rastrigin).unwrap();
    let smem = GpuBackend::new()
        .strategy(UpdateStrategy::SharedMem)
        .run(&cfg, &Rastrigin)
        .unwrap();
    assert_eq!(seq.best_value, par.best_value);
    assert_eq!(seq.best_value, gpu.best_value);
    assert_eq!(seq.best_value, smem.best_value);
    assert_eq!(seq.best_position, gpu.best_position);
    // Ring migration over 4 islands moves 4 edges × 2 elites = 8 rows per
    // event; 60 iterations at every_k = 5 fire 12 events. The rollup is
    // part of the determinism contract, so every backend reports it.
    assert_eq!(seq.migrations, 96);
    assert_eq!(par.migrations, 96);
    assert_eq!(gpu.migrations, 96);
}

#[test]
fn every_migration_kind_changes_the_trajectory_and_still_converges() {
    let base = PsoConfig::builder(96, 8).max_iter(250).seed(3);
    let single = base.clone().build().unwrap();
    let a = SeqBackend.run(&single, &Rastrigin).unwrap();
    assert_eq!(a.migrations, 0, "single swarm never migrates");
    for kind in [
        MigrationKind::Ring,
        MigrationKind::Star,
        MigrationKind::Random,
    ] {
        let cfg = base
            .clone()
            .topology(islands(4, kind, 10, 2))
            .build()
            .unwrap();
        let r = SeqBackend.run(&cfg, &Rastrigin).unwrap();
        assert_ne!(a.best_position, r.best_position, "{kind:?} must matter");
        assert!(r.migrations > 0, "{kind:?} must migrate");
        assert!(r.best_value < 40.0, "{kind:?} diverged: {}", r.best_value);
    }
}

#[test]
fn island_runs_are_deterministic_in_seed() {
    let cfg = PsoConfig::builder(32, 6)
        .max_iter(40)
        .seed(11)
        .topology(islands(2, MigrationKind::Random, 4, 3))
        .build()
        .unwrap();
    let a = GpuBackend::new().run(&cfg, &Sphere).unwrap();
    let b = GpuBackend::new().run(&cfg, &Sphere).unwrap();
    assert_eq!(a.best_value, b.best_value);
    assert_eq!(a.best_position, b.best_position);
    assert_eq!(a.migrations, b.migrations);
}

#[test]
fn multi_gpu_rejects_ring_topology() {
    let cfg = PsoConfig::builder(32, 4)
        .max_iter(5)
        .topology(Topology::Ring { k: 1 })
        .build()
        .unwrap();
    let err = MultiGpuBackend::new(2, MultiGpuStrategy::TileMatrix)
        .run(&cfg, &Sphere)
        .unwrap_err();
    assert!(matches!(err, PsoError::InvalidConfig(_)));
}

#[test]
fn multi_gpu_rejects_island_topology() {
    let cfg = PsoConfig::builder(32, 4)
        .max_iter(5)
        .topology(islands(4, MigrationKind::Star, 5, 1))
        .build()
        .unwrap();
    let err = MultiGpuBackend::new(2, MultiGpuStrategy::TileMatrix)
        .run(&cfg, &Sphere)
        .unwrap_err();
    assert!(matches!(err, PsoError::InvalidConfig(_)));
}

#[test]
fn target_value_stops_early_on_every_backend() {
    let cfg = PsoConfig::builder(128, 6)
        .max_iter(5000)
        .seed(4)
        .target_value(1.0)
        .build()
        .unwrap();
    for backend in [
        Box::new(SeqBackend) as Box<dyn PsoBackend>,
        Box::new(ParBackend),
        Box::new(GpuBackend::new()),
    ] {
        let r = backend.run(&cfg, &Sphere).unwrap();
        assert!(r.best_value <= 1.0, "{}: {}", backend.name(), r.best_value);
        assert!(
            r.iterations < 5000,
            "{}: should stop early, ran {}",
            backend.name(),
            r.iterations
        );
        assert_eq!(r.evaluations, 128 * r.iterations as u64);
    }
}

#[test]
fn early_stop_matches_truncated_run_exactly() {
    // Stopping at the target must equal a run truncated at that iteration.
    // Constant inertia: the decay schedule depends on max_iter, so the
    // truncated run would otherwise follow a different ω(t).
    let full = PsoConfig::builder(64, 6)
        .max_iter(400)
        .seed(12)
        .omega(0.7)
        .constant_inertia()
        .target_value(0.5)
        .record_history(true)
        .build()
        .unwrap();
    let stopped = SeqBackend.run(&full, &Sphere).unwrap();
    let mut truncated_cfg = full.clone();
    truncated_cfg.target_value = None;
    truncated_cfg.max_iter = stopped.iterations;
    let truncated = SeqBackend.run(&truncated_cfg, &Sphere).unwrap();
    assert_eq!(stopped.best_value, truncated.best_value);
    assert_eq!(stopped.history, truncated.history);
}

#[test]
fn patience_stops_stagnant_runs() {
    // A 1-particle swarm with zero coefficients never improves after the
    // first evaluation: patience must cut it off.
    let cfg = PsoConfig::builder(1, 4)
        .max_iter(1000)
        .omega(0.0)
        .omega_end(0.0)
        .c1(0.0)
        .c2(0.0)
        .patience(7)
        .seed(2)
        .build()
        .unwrap();
    let r = SeqBackend.run(&cfg, &Sphere).unwrap();
    assert!(r.iterations <= 10, "ran {} iterations", r.iterations);
    let g = GpuBackend::new().run(&cfg, &Sphere).unwrap();
    assert_eq!(
        g.iterations, r.iterations,
        "backends agree on the stop point"
    );
}

#[test]
fn zero_patience_is_rejected() {
    let err = PsoConfig::builder(4, 2).patience(0).build().unwrap_err();
    assert!(matches!(err, PsoError::InvalidConfig(_)));
}
