//! Integration tests for the multi-tenant serving layer (`fastpso::serve`):
//! replayed-trace determinism, strict admission backpressure, lease/memory
//! hygiene on cancellation, device-loss re-homing (an exhaustive
//! per-ordinal fault sweep) and crash-safe journal snapshot/restore.

use fastpso::resilience::ResilienceConfig;
use fastpso::serve::{
    JobId, JobStatus, OptimizeRequest, Priority, ServeConfig, ServeError, ServeEvent, Service,
};
use fastpso::{CounterAsserts, PsoConfig, RunResult};
use fastpso_functions::builtins::{Griewank, Rastrigin, Sphere};
use fastpso_functions::Objective;
use gpu_sim::{DeviceGroup, FaultPlan, HealthState};
use std::sync::Arc;

fn cfg(n: usize, d: usize, iters: usize, seed: u64) -> PsoConfig {
    PsoConfig::builder(n, d)
        .max_iter(iters)
        .seed(seed)
        .build()
        .unwrap()
}

/// Replay a fixed multi-tenant arrival trace: 8 jobs over 3 tenants with
/// mixed priorities and objectives, with scheduler ticks interleaved
/// between arrival bursts. Returns every job's result plus the
/// service-wide launch manifest.
fn replay_trace() -> (Vec<RunResult>, Vec<String>) {
    let mut svc = Service::new(
        DeviceGroup::v100s(2),
        ServeConfig {
            slots_per_device: 2,
            slice_iters: 6,
            ..ServeConfig::default()
        },
    );
    let objs: [Arc<dyn Objective>; 3] = [Arc::new(Sphere), Arc::new(Rastrigin), Arc::new(Griewank)];
    let mut ids: Vec<JobId> = Vec::new();
    for burst in 0..2 {
        for i in 0..4u64 {
            let job = burst * 4 + i;
            let req = OptimizeRequest::new(
                ["acme", "globex", "initech"][job as usize % 3],
                Arc::clone(&objs[job as usize % 3]),
                cfg(24 + 8 * (job as usize % 2), 4, 25, 100 + job),
            )
            .priority([Priority::Low, Priority::Normal, Priority::High][job as usize % 3]);
            ids.push(svc.submit(req).unwrap());
        }
        // Let the first burst make partial progress before the second lands.
        svc.tick();
        svc.tick();
    }
    svc.run_until_idle();
    let results = ids
        .iter()
        .map(|&id| svc.result(id).unwrap().clone())
        .collect();
    let manifest = svc
        .merged_profiler()
        .kernels
        .iter()
        .map(|k| {
            format!(
                "{} dev{} grid{:?} block{:?} threads{}",
                k.name, k.device, k.grid, k.block, k.threads
            )
        })
        .collect();
    (results, manifest)
}

#[test]
fn replayed_trace_is_bit_identical_with_identical_manifest() {
    let (results_a, manifest_a) = replay_trace();
    let (results_b, manifest_b) = replay_trace();
    assert_eq!(results_a.len(), 8);
    for (a, b) in results_a.iter().zip(&results_b) {
        CounterAsserts::assert_bit_identical_gbest(a, b);
        assert_eq!(a.iterations, b.iterations);
    }
    assert_eq!(
        manifest_a.len(),
        manifest_b.len(),
        "launch counts differ between replays"
    );
    assert_eq!(manifest_a, manifest_b, "launch manifest drifted");
    assert!(!manifest_a.is_empty());
}

#[test]
fn interleaving_does_not_perturb_single_job_trajectories() {
    use fastpso::{GpuBackend, PsoBackend};
    // Every job served under contention must match the same job run alone
    // on a dedicated device, bit for bit.
    let configs: Vec<PsoConfig> = (0..4).map(|i| cfg(32, 6, 30, 500 + i)).collect();
    let alone: Vec<RunResult> = configs
        .iter()
        .map(|c| GpuBackend::new().run(c, &Sphere).unwrap())
        .collect();
    let mut svc = Service::new(
        DeviceGroup::v100s(2),
        ServeConfig {
            slots_per_device: 2,
            slice_iters: 4,
            ..ServeConfig::default()
        },
    );
    let ids: Vec<JobId> = configs
        .iter()
        .map(|c| {
            svc.submit(OptimizeRequest::new("t", Arc::new(Sphere), c.clone()))
                .unwrap()
        })
        .collect();
    svc.run_until_idle();
    for (id, expect) in ids.iter().zip(&alone) {
        let got = svc.result(*id).unwrap();
        CounterAsserts::assert_bit_identical_gbest(got, expect);
    }
}

#[test]
fn backpressure_rejects_without_dropping() {
    let mut svc = Service::new(
        DeviceGroup::v100s(1),
        ServeConfig {
            queue_capacity: 3,
            slots_per_device: 1,
            ..ServeConfig::default()
        },
    );
    let mut admitted = Vec::new();
    let mut rejected = 0;
    for i in 0..6u64 {
        match svc.submit(OptimizeRequest::new(
            "t",
            Arc::new(Sphere),
            cfg(16, 4, 15, i),
        )) {
            Ok(id) => admitted.push(id),
            Err(ServeError::QueueFull { capacity }) => {
                assert_eq!(capacity, 3);
                rejected += 1;
            }
            Err(e) => panic!("unexpected error: {e}"),
        }
    }
    assert_eq!(
        admitted.len(),
        3,
        "bounded queue admits exactly its capacity"
    );
    assert_eq!(rejected, 3);
    svc.run_until_idle();
    // Every admitted job completes — backpressure must never shed.
    for id in &admitted {
        assert_eq!(svc.status(*id).unwrap(), JobStatus::Completed);
        assert!(svc.result(*id).is_ok());
    }
    let rollup = svc.tenant_rollups();
    assert_eq!(rollup[0].completed, 3);
    assert_eq!(rollup[0].shed, 0, "nothing dropped");
    // Draining frees the queue: new submissions are accepted again.
    assert!(svc
        .submit(OptimizeRequest::new(
            "t",
            Arc::new(Sphere),
            cfg(16, 4, 5, 9)
        ))
        .is_ok());
    svc.run_until_idle();
}

#[test]
fn cancellation_mid_run_frees_device_lease_and_memory() {
    let group = DeviceGroup::v100s(2);
    let baseline: Vec<usize> = group.iter().map(|d| d.bytes_in_use()).collect();
    assert!(baseline.iter().all(|&b| b == 0));
    let mut svc = Service::new(
        group,
        ServeConfig {
            slots_per_device: 1,
            slice_iters: 3,
            ..ServeConfig::default()
        },
    );
    let long = svc
        .submit(OptimizeRequest::new(
            "t",
            Arc::new(Rastrigin),
            cfg(64, 8, 10_000, 1),
        ))
        .unwrap();
    let short = svc
        .submit(OptimizeRequest::new(
            "t",
            Arc::new(Sphere),
            cfg(16, 4, 20, 2),
        ))
        .unwrap();
    svc.tick(); // both admitted, mid-run
    assert_eq!(svc.status(long).unwrap(), JobStatus::Running);
    assert!(svc.group().iter().any(|d| d.bytes_in_use() > 0));
    let (in_use, _) = svc.occupancy();
    assert_eq!(in_use, 2);

    svc.cancel(long).unwrap();
    assert_eq!(svc.status(long).unwrap(), JobStatus::Cancelled);
    assert_eq!(svc.occupancy().0, 1, "cancelled job's lease returned");
    svc.run_until_idle();
    assert_eq!(svc.status(short).unwrap(), JobStatus::Completed);
    // Zero leaked allocations: every byte the jobs allocated was freed.
    for d in svc.group().iter() {
        assert_eq!(d.bytes_in_use(), 0, "device {} leaked memory", d.index());
    }
    assert_eq!(svc.occupancy().0, 0);
    // The profiler saw every charge the timeline saw — cancellation did
    // not tear a device mid-record.
    for d in svc.group().iter() {
        CounterAsserts::capture(d).assert_profiler_matches_timeline();
    }
    // Cancelling a finished job is an idempotent no-op; unknown ids error.
    svc.cancel(long).unwrap();
    assert!(matches!(
        svc.cancel(JobId(999)),
        Err(ServeError::UnknownJob(_))
    ));
}

// ---- fleet fault tolerance ------------------------------------------------

/// Everything one chaos replay observes.
struct Chaos {
    results: Vec<RunResult>,
    manifest: Vec<String>,
    snapshot: Vec<u8>,
    events: Vec<ServeEvent>,
    /// Whether the planned device loss actually fired during the run.
    lost: bool,
    dev1_health: HealthState,
    total_rehomes: u64,
}

/// Replay a fixed 6-job trace (5 packed + 1 sharded, 3 tenants, mixed
/// priorities) over 2 devices, optionally losing device 1 permanently at
/// its `loss_ordinal`-th kernel launch.
fn chaos_trace(loss_ordinal: Option<u64>) -> Chaos {
    let group = DeviceGroup::v100s(2);
    if let Some(ord) = loss_ordinal {
        group.set_fault_plans(vec![
            FaultPlan::new(),
            FaultPlan::new().with_device_loss_at_launch(ord),
        ]);
    }
    let mut svc = Service::new(
        group,
        ServeConfig {
            slots_per_device: 2,
            slice_iters: 4,
            shard_threshold_particles: 64,
            ..ServeConfig::default()
        },
    );
    let objs: [Arc<dyn Objective>; 3] = [Arc::new(Sphere), Arc::new(Rastrigin), Arc::new(Griewank)];
    let mut ids: Vec<JobId> = Vec::new();
    for i in 0..5u64 {
        let req = OptimizeRequest::new(
            ["acme", "globex"][i as usize % 2],
            Arc::clone(&objs[i as usize % 3]),
            cfg(24 + 8 * (i as usize % 2), 4, 25, 900 + i),
        )
        .priority([Priority::Normal, Priority::High, Priority::Low][i as usize % 3]);
        ids.push(svc.submit(req).unwrap());
    }
    // One job large enough to shard over both devices.
    ids.push(
        svc.submit(OptimizeRequest::new(
            "initech",
            Arc::new(Sphere),
            cfg(64, 4, 25, 950),
        ))
        .unwrap(),
    );
    svc.run_until_idle();
    let results = ids
        .iter()
        .map(|&id| svc.result(id).unwrap().clone())
        .collect();
    let manifest = svc
        .merged_profiler()
        .kernels
        .iter()
        .map(|k| {
            format!(
                "{} dev{} grid{:?} block{:?} threads{}",
                k.name, k.device, k.grid, k.block, k.threads
            )
        })
        .collect();
    Chaos {
        results,
        manifest,
        snapshot: svc.snapshot(),
        events: svc.journal().events().to_vec(),
        lost: svc.group().device(1).unwrap().is_lost(),
        dev1_health: svc.health().state(1),
        total_rehomes: svc.records().iter().map(|r| r.rehomes).sum(),
    }
}

/// Exhaustive per-ordinal device-loss sweep: whatever launch the device
/// dies at, every affected job completes via re-homing with a result
/// bit-identical to the fault-free run, the lost device is quarantined and
/// never leased again, and each faulted scenario replays deterministically
/// (identical launch manifest and journal bytes).
#[test]
fn device_loss_sweep_rehomes_every_job_bit_identically() {
    let clean = chaos_trace(None);
    assert_eq!(clean.results.len(), 6);
    assert!(!clean.lost);
    assert_eq!(clean.total_rehomes, 0);
    for ord in [1, 7, 40, 90, 220] {
        let a = chaos_trace(Some(ord));
        let b = chaos_trace(Some(ord));
        assert_eq!(a.manifest, b.manifest, "ordinal {ord}: manifest drifted");
        assert_eq!(a.snapshot, b.snapshot, "ordinal {ord}: journal drifted");
        for (i, (fa, fc)) in a.results.iter().zip(&clean.results).enumerate() {
            CounterAsserts::assert_bit_identical_gbest(fa, fc);
            assert_eq!(
                fa.iterations, fc.iterations,
                "ordinal {ord}, job {i}: iteration count diverged under loss"
            );
        }
        if a.lost {
            assert!(
                a.total_rehomes >= 1,
                "ordinal {ord}: loss fired but nothing re-homed"
            );
            assert_eq!(
                a.dev1_health,
                HealthState::Quarantined,
                "ordinal {ord}: lost device must stay quarantined"
            );
            let first_rehome = a
                .events
                .iter()
                .position(|e| matches!(e, ServeEvent::Rehome { .. }))
                .expect("re-homing must be journaled");
            for e in &a.events[first_rehome..] {
                if let ServeEvent::Admit { job, devices } = e {
                    assert!(
                        !devices.contains(&1),
                        "ordinal {ord}: job#{job} leased the lost device"
                    );
                }
            }
        }
    }
}

/// Crash-safe journal: snapshotting a mid-flight service and replaying the
/// snapshot against a fresh group reproduces queue depth, the running set
/// and the job records — and re-serializes byte-for-byte. Corrupt bytes
/// and a wrong request list are rejected, not silently mis-restored.
#[test]
fn journal_snapshot_restore_is_byte_exact() {
    let serve_cfg = ServeConfig {
        slots_per_device: 1,
        slice_iters: 3,
        ..ServeConfig::default()
    };
    let requests: Vec<OptimizeRequest> = (0..6u64)
        .map(|i| {
            OptimizeRequest::new(
                ["acme", "globex", "initech"][i as usize % 3],
                Arc::new(Sphere) as Arc<dyn Objective>,
                cfg(16 + 8 * (i as usize % 2), 4, 40, 700 + i),
            )
            .priority([Priority::Low, Priority::Normal, Priority::High][i as usize % 3])
        })
        .collect();
    let mut svc = Service::new(DeviceGroup::v100s(2), serve_cfg.clone());
    let ids: Vec<JobId> = requests
        .iter()
        .map(|r| svc.submit(r.clone()).unwrap())
        .collect();
    svc.tick();
    svc.tick();
    svc.cancel(ids[3]).unwrap(); // cancel becomes a journaled input event
    svc.tick();
    // Snapshot mid-flight: jobs queued, running and finished all at once.
    assert!(svc.queue_depth() > 0 && svc.n_running() > 0);
    let snap = svc.snapshot();

    let restored = Service::restore(
        DeviceGroup::v100s(2),
        serve_cfg.clone(),
        &snap,
        requests.clone(),
    )
    .unwrap();
    assert_eq!(restored.queue_depth(), svc.queue_depth());
    assert_eq!(restored.running_ids(), svc.running_ids());
    assert_eq!(restored.records(), svc.records());
    assert_eq!(
        restored.now(),
        svc.now(),
        "modeled clock must replay exactly"
    );
    assert_eq!(
        restored.snapshot(),
        snap,
        "re-serialization must be byte-exact"
    );

    // A flipped byte is detected, not replayed.
    let mut torn = snap.clone();
    let mid = torn.len() / 2;
    torn[mid] ^= 0x40;
    assert!(matches!(
        Service::restore(
            DeviceGroup::v100s(2),
            serve_cfg.clone(),
            &torn,
            requests.clone()
        ),
        Err(ServeError::JournalCorrupt(_))
    ));
    // A wrong request list diverges and is rejected.
    assert!(matches!(
        Service::restore(DeviceGroup::v100s(2), serve_cfg.clone(), &snap, Vec::new()),
        Err(ServeError::RestoreMismatch(_))
    ));

    // Both services drive to idle along the same trajectory.
    let mut svc = svc;
    let mut restored = restored;
    svc.run_until_idle();
    restored.run_until_idle();
    for &id in &ids {
        if id == ids[3] {
            continue; // cancelled
        }
        let a = svc.result(id).unwrap();
        let b = restored.result(id).unwrap();
        CounterAsserts::assert_bit_identical_gbest(a, b);
    }
    assert_eq!(svc.snapshot(), restored.snapshot());
}

/// Regression for the lease-accounting race: a job cancelled while its
/// device is lost must release its lease exactly once, in both orderings
/// (cancel after the re-homing sweep ran, and cancel while the job still
/// holds a lease spanning the dead device).
#[test]
fn cancellation_during_device_loss_releases_each_lease_exactly_once() {
    // Ordering A: the loss is noticed first (the slice errors and the job
    // is re-homed to the queue), then the submitter cancels.
    let group = DeviceGroup::v100s(2);
    group.set_fault_plans(vec![
        FaultPlan::new(),
        FaultPlan::new().with_device_loss_at_launch(9),
    ]);
    let mut svc = Service::new(
        group,
        ServeConfig {
            slots_per_device: 1,
            slice_iters: 3,
            ..ServeConfig::default()
        },
    );
    let a = svc
        .submit(OptimizeRequest::new(
            "t",
            Arc::new(Sphere),
            cfg(24, 4, 500, 1),
        ))
        .unwrap();
    let b = svc
        .submit(OptimizeRequest::new(
            "t",
            Arc::new(Rastrigin),
            cfg(24, 4, 500, 2),
        ))
        .unwrap();
    let mut guard = 0;
    while !svc.group().device(1).unwrap().is_lost() {
        svc.tick();
        guard += 1;
        assert!(guard < 50, "loss never fired");
    }
    svc.tick(); // re-homing sweep requeues the stranded job
    assert_eq!(svc.occupancy().0, 1, "only the healthy device's lease held");
    svc.cancel(b).unwrap();
    svc.cancel(a).unwrap();
    assert_eq!(svc.occupancy().0, 0, "every lease released exactly once");
    assert_eq!(svc.status(a).unwrap(), JobStatus::Cancelled);
    assert_eq!(svc.status(b).unwrap(), JobStatus::Cancelled);
    svc.run_until_idle();
    assert_eq!(svc.group().device(0).unwrap().bytes_in_use(), 0);

    // Ordering B: cancel lands while the job still holds a lease spanning
    // the dead device (a resilient sharded job survives the loss inside
    // its slice, so the serve layer hasn't swept it yet).
    let group = DeviceGroup::v100s(2);
    group.set_fault_plans(vec![
        FaultPlan::new(),
        FaultPlan::new().with_device_loss_at_launch(30),
    ]);
    let mut svc = Service::new(
        group,
        ServeConfig {
            slots_per_device: 1,
            slice_iters: 4,
            shard_threshold_particles: 64,
            ..ServeConfig::default()
        },
    );
    let j = svc
        .submit(
            OptimizeRequest::new("t", Arc::new(Sphere), cfg(64, 4, 500, 3))
                .resilient(ResilienceConfig::default()),
        )
        .unwrap();
    let mut guard = 0;
    while !svc.group().device(1).unwrap().is_lost() {
        svc.tick();
        guard += 1;
        assert!(guard < 50, "loss never fired");
    }
    // The resilient job absorbed the loss mid-slice and is still running
    // on a lease that includes the dead device.
    assert_eq!(svc.status(j).unwrap(), JobStatus::Running);
    svc.cancel(j).unwrap();
    assert_eq!(
        svc.occupancy().0,
        0,
        "lease spanning the dead device released once"
    );
    assert_eq!(svc.status(j).unwrap(), JobStatus::Cancelled);
    svc.run_until_idle();
    assert_eq!(svc.group().device(0).unwrap().bytes_in_use(), 0);
}
