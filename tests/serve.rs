//! Integration tests for the multi-tenant serving layer (`fastpso::serve`):
//! replayed-trace determinism, strict admission backpressure, and
//! lease/memory hygiene on cancellation.

use fastpso::serve::{
    JobId, JobStatus, OptimizeRequest, Priority, ServeConfig, ServeError, Service,
};
use fastpso::{CounterAsserts, PsoConfig, RunResult};
use fastpso_functions::builtins::{Griewank, Rastrigin, Sphere};
use fastpso_functions::Objective;
use gpu_sim::DeviceGroup;
use std::sync::Arc;

fn cfg(n: usize, d: usize, iters: usize, seed: u64) -> PsoConfig {
    PsoConfig::builder(n, d)
        .max_iter(iters)
        .seed(seed)
        .build()
        .unwrap()
}

/// Replay a fixed multi-tenant arrival trace: 8 jobs over 3 tenants with
/// mixed priorities and objectives, with scheduler ticks interleaved
/// between arrival bursts. Returns every job's result plus the
/// service-wide launch manifest.
fn replay_trace() -> (Vec<RunResult>, Vec<String>) {
    let mut svc = Service::new(
        DeviceGroup::v100s(2),
        ServeConfig {
            slots_per_device: 2,
            slice_iters: 6,
            ..ServeConfig::default()
        },
    );
    let objs: [Arc<dyn Objective>; 3] = [Arc::new(Sphere), Arc::new(Rastrigin), Arc::new(Griewank)];
    let mut ids: Vec<JobId> = Vec::new();
    for burst in 0..2 {
        for i in 0..4u64 {
            let job = burst * 4 + i;
            let req = OptimizeRequest::new(
                ["acme", "globex", "initech"][job as usize % 3],
                Arc::clone(&objs[job as usize % 3]),
                cfg(24 + 8 * (job as usize % 2), 4, 25, 100 + job),
            )
            .priority([Priority::Low, Priority::Normal, Priority::High][job as usize % 3]);
            ids.push(svc.submit(req).unwrap());
        }
        // Let the first burst make partial progress before the second lands.
        svc.tick();
        svc.tick();
    }
    svc.run_until_idle();
    let results = ids
        .iter()
        .map(|&id| svc.result(id).unwrap().clone())
        .collect();
    let manifest = svc
        .merged_profiler()
        .kernels
        .iter()
        .map(|k| {
            format!(
                "{} dev{} grid{:?} block{:?} threads{}",
                k.name, k.device, k.grid, k.block, k.threads
            )
        })
        .collect();
    (results, manifest)
}

#[test]
fn replayed_trace_is_bit_identical_with_identical_manifest() {
    let (results_a, manifest_a) = replay_trace();
    let (results_b, manifest_b) = replay_trace();
    assert_eq!(results_a.len(), 8);
    for (a, b) in results_a.iter().zip(&results_b) {
        CounterAsserts::assert_bit_identical_gbest(a, b);
        assert_eq!(a.iterations, b.iterations);
    }
    assert_eq!(
        manifest_a.len(),
        manifest_b.len(),
        "launch counts differ between replays"
    );
    assert_eq!(manifest_a, manifest_b, "launch manifest drifted");
    assert!(!manifest_a.is_empty());
}

#[test]
fn interleaving_does_not_perturb_single_job_trajectories() {
    use fastpso::{GpuBackend, PsoBackend};
    // Every job served under contention must match the same job run alone
    // on a dedicated device, bit for bit.
    let configs: Vec<PsoConfig> = (0..4).map(|i| cfg(32, 6, 30, 500 + i)).collect();
    let alone: Vec<RunResult> = configs
        .iter()
        .map(|c| GpuBackend::new().run(c, &Sphere).unwrap())
        .collect();
    let mut svc = Service::new(
        DeviceGroup::v100s(2),
        ServeConfig {
            slots_per_device: 2,
            slice_iters: 4,
            ..ServeConfig::default()
        },
    );
    let ids: Vec<JobId> = configs
        .iter()
        .map(|c| {
            svc.submit(OptimizeRequest::new("t", Arc::new(Sphere), c.clone()))
                .unwrap()
        })
        .collect();
    svc.run_until_idle();
    for (id, expect) in ids.iter().zip(&alone) {
        let got = svc.result(*id).unwrap();
        CounterAsserts::assert_bit_identical_gbest(got, expect);
    }
}

#[test]
fn backpressure_rejects_without_dropping() {
    let mut svc = Service::new(
        DeviceGroup::v100s(1),
        ServeConfig {
            queue_capacity: 3,
            slots_per_device: 1,
            ..ServeConfig::default()
        },
    );
    let mut admitted = Vec::new();
    let mut rejected = 0;
    for i in 0..6u64 {
        match svc.submit(OptimizeRequest::new(
            "t",
            Arc::new(Sphere),
            cfg(16, 4, 15, i),
        )) {
            Ok(id) => admitted.push(id),
            Err(ServeError::QueueFull { capacity }) => {
                assert_eq!(capacity, 3);
                rejected += 1;
            }
            Err(e) => panic!("unexpected error: {e}"),
        }
    }
    assert_eq!(
        admitted.len(),
        3,
        "bounded queue admits exactly its capacity"
    );
    assert_eq!(rejected, 3);
    svc.run_until_idle();
    // Every admitted job completes — backpressure must never shed.
    for id in &admitted {
        assert_eq!(svc.status(*id).unwrap(), JobStatus::Completed);
        assert!(svc.result(*id).is_ok());
    }
    let rollup = svc.tenant_rollups();
    assert_eq!(rollup[0].completed, 3);
    assert_eq!(rollup[0].shed, 0, "nothing dropped");
    // Draining frees the queue: new submissions are accepted again.
    assert!(svc
        .submit(OptimizeRequest::new(
            "t",
            Arc::new(Sphere),
            cfg(16, 4, 5, 9)
        ))
        .is_ok());
    svc.run_until_idle();
}

#[test]
fn cancellation_mid_run_frees_device_lease_and_memory() {
    let group = DeviceGroup::v100s(2);
    let baseline: Vec<usize> = group.iter().map(|d| d.bytes_in_use()).collect();
    assert!(baseline.iter().all(|&b| b == 0));
    let mut svc = Service::new(
        group,
        ServeConfig {
            slots_per_device: 1,
            slice_iters: 3,
            ..ServeConfig::default()
        },
    );
    let long = svc
        .submit(OptimizeRequest::new(
            "t",
            Arc::new(Rastrigin),
            cfg(64, 8, 10_000, 1),
        ))
        .unwrap();
    let short = svc
        .submit(OptimizeRequest::new(
            "t",
            Arc::new(Sphere),
            cfg(16, 4, 20, 2),
        ))
        .unwrap();
    svc.tick(); // both admitted, mid-run
    assert_eq!(svc.status(long).unwrap(), JobStatus::Running);
    assert!(svc.group().iter().any(|d| d.bytes_in_use() > 0));
    let (in_use, _) = svc.occupancy();
    assert_eq!(in_use, 2);

    svc.cancel(long).unwrap();
    assert_eq!(svc.status(long).unwrap(), JobStatus::Cancelled);
    assert_eq!(svc.occupancy().0, 1, "cancelled job's lease returned");
    svc.run_until_idle();
    assert_eq!(svc.status(short).unwrap(), JobStatus::Completed);
    // Zero leaked allocations: every byte the jobs allocated was freed.
    for d in svc.group().iter() {
        assert_eq!(d.bytes_in_use(), 0, "device {} leaked memory", d.index());
    }
    assert_eq!(svc.occupancy().0, 0);
    // The profiler saw every charge the timeline saw — cancellation did
    // not tear a device mid-record.
    for d in svc.group().iter() {
        CounterAsserts::capture(d).assert_profiler_matches_timeline();
    }
    // Cancelling a finished job is an idempotent no-op; unknown ids error.
    svc.cancel(long).unwrap();
    assert!(matches!(
        svc.cancel(JobId(999)),
        Err(ServeError::UnknownJob(_))
    ));
}
