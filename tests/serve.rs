//! Integration tests for the multi-tenant serving layer (`fastpso::serve`):
//! replayed-trace determinism, strict admission backpressure, lease/memory
//! hygiene on cancellation, device-loss re-homing (an exhaustive
//! per-ordinal fault sweep), crash-safe journal snapshot/restore, and the
//! predictive admission controller — a proptest over random
//! submit/cancel/tick interleavings, a calibration regression against the
//! pinned per-strategy tolerance table
//! (`results/predictor_tolerance.golden.txt`, regenerate with
//! `UPDATE_GOLDEN=1 cargo test --test serve`), and an overload goodput
//! regression pinning predictive vs blind reject/shed/complete counts.

use fastpso::resilience::ResilienceConfig;
use fastpso::serve::{
    BatchPolicy, JobId, JobStatus, OptimizeRequest, Priority, ServeConfig, ServeError, ServeEvent,
    Service,
};
use fastpso::{CounterAsserts, PsoConfig, RunResult, UpdateStrategy};
use fastpso_functions::builtins::{Griewank, Rastrigin, Sphere};
use fastpso_functions::Objective;
use gpu_sim::{DeviceGroup, FaultPlan, HealthState};
use proptest::prelude::*;
use std::sync::Arc;

fn cfg(n: usize, d: usize, iters: usize, seed: u64) -> PsoConfig {
    PsoConfig::builder(n, d)
        .max_iter(iters)
        .seed(seed)
        .build()
        .unwrap()
}

/// Replay a fixed multi-tenant arrival trace: 8 jobs over 3 tenants with
/// mixed priorities and objectives, with scheduler ticks interleaved
/// between arrival bursts. Returns every job's result plus the
/// service-wide launch manifest.
fn replay_trace() -> (Vec<RunResult>, Vec<String>) {
    let mut svc = Service::new(
        DeviceGroup::v100s(2),
        ServeConfig {
            slots_per_device: 2,
            slice_iters: 6,
            ..ServeConfig::default()
        },
    );
    let objs: [Arc<dyn Objective>; 3] = [Arc::new(Sphere), Arc::new(Rastrigin), Arc::new(Griewank)];
    let mut ids: Vec<JobId> = Vec::new();
    for burst in 0..2 {
        for i in 0..4u64 {
            let job = burst * 4 + i;
            let req = OptimizeRequest::new(
                ["acme", "globex", "initech"][job as usize % 3],
                Arc::clone(&objs[job as usize % 3]),
                cfg(24 + 8 * (job as usize % 2), 4, 25, 100 + job),
            )
            .priority([Priority::Low, Priority::Normal, Priority::High][job as usize % 3]);
            ids.push(svc.submit(req).unwrap());
        }
        // Let the first burst make partial progress before the second lands.
        svc.tick();
        svc.tick();
    }
    svc.run_until_idle();
    let results = ids
        .iter()
        .map(|&id| svc.result(id).unwrap().clone())
        .collect();
    let manifest = svc
        .merged_profiler()
        .kernels
        .iter()
        .map(|k| {
            format!(
                "{} dev{} grid{:?} block{:?} threads{}",
                k.name, k.device, k.grid, k.block, k.threads
            )
        })
        .collect();
    (results, manifest)
}

#[test]
fn replayed_trace_is_bit_identical_with_identical_manifest() {
    let (results_a, manifest_a) = replay_trace();
    let (results_b, manifest_b) = replay_trace();
    assert_eq!(results_a.len(), 8);
    for (a, b) in results_a.iter().zip(&results_b) {
        CounterAsserts::assert_bit_identical_gbest(a, b);
        assert_eq!(a.iterations, b.iterations);
    }
    assert_eq!(
        manifest_a.len(),
        manifest_b.len(),
        "launch counts differ between replays"
    );
    assert_eq!(manifest_a, manifest_b, "launch manifest drifted");
    assert!(!manifest_a.is_empty());
}

#[test]
fn interleaving_does_not_perturb_single_job_trajectories() {
    use fastpso::{GpuBackend, PsoBackend};
    // Every job served under contention must match the same job run alone
    // on a dedicated device, bit for bit.
    let configs: Vec<PsoConfig> = (0..4).map(|i| cfg(32, 6, 30, 500 + i)).collect();
    let alone: Vec<RunResult> = configs
        .iter()
        .map(|c| GpuBackend::new().run(c, &Sphere).unwrap())
        .collect();
    let mut svc = Service::new(
        DeviceGroup::v100s(2),
        ServeConfig {
            slots_per_device: 2,
            slice_iters: 4,
            ..ServeConfig::default()
        },
    );
    let ids: Vec<JobId> = configs
        .iter()
        .map(|c| {
            svc.submit(OptimizeRequest::new("t", Arc::new(Sphere), c.clone()))
                .unwrap()
        })
        .collect();
    svc.run_until_idle();
    for (id, expect) in ids.iter().zip(&alone) {
        let got = svc.result(*id).unwrap();
        CounterAsserts::assert_bit_identical_gbest(got, expect);
    }
}

#[test]
fn backpressure_rejects_without_dropping() {
    let mut svc = Service::new(
        DeviceGroup::v100s(1),
        ServeConfig {
            queue_capacity: 3,
            slots_per_device: 1,
            ..ServeConfig::default()
        },
    );
    let mut admitted = Vec::new();
    let mut rejected = 0;
    for i in 0..6u64 {
        match svc.submit(OptimizeRequest::new(
            "t",
            Arc::new(Sphere),
            cfg(16, 4, 15, i),
        )) {
            Ok(id) => admitted.push(id),
            Err(ServeError::QueueFull { capacity }) => {
                assert_eq!(capacity, 3);
                rejected += 1;
            }
            Err(e) => panic!("unexpected error: {e}"),
        }
    }
    assert_eq!(
        admitted.len(),
        3,
        "bounded queue admits exactly its capacity"
    );
    assert_eq!(rejected, 3);
    svc.run_until_idle();
    // Every admitted job completes — backpressure must never shed.
    for id in &admitted {
        assert_eq!(svc.status(*id).unwrap(), JobStatus::Completed);
        assert!(svc.result(*id).is_ok());
    }
    let rollup = svc.tenant_rollups();
    assert_eq!(rollup[0].completed, 3);
    assert_eq!(rollup[0].shed, 0, "nothing dropped");
    // Draining frees the queue: new submissions are accepted again.
    assert!(svc
        .submit(OptimizeRequest::new(
            "t",
            Arc::new(Sphere),
            cfg(16, 4, 5, 9)
        ))
        .is_ok());
    svc.run_until_idle();
}

#[test]
fn cancellation_mid_run_frees_device_lease_and_memory() {
    let group = DeviceGroup::v100s(2);
    let baseline: Vec<usize> = group.iter().map(|d| d.bytes_in_use()).collect();
    assert!(baseline.iter().all(|&b| b == 0));
    let mut svc = Service::new(
        group,
        ServeConfig {
            slots_per_device: 1,
            slice_iters: 3,
            ..ServeConfig::default()
        },
    );
    let long = svc
        .submit(OptimizeRequest::new(
            "t",
            Arc::new(Rastrigin),
            cfg(64, 8, 10_000, 1),
        ))
        .unwrap();
    let short = svc
        .submit(OptimizeRequest::new(
            "t",
            Arc::new(Sphere),
            cfg(16, 4, 20, 2),
        ))
        .unwrap();
    svc.tick(); // both admitted, mid-run
    assert_eq!(svc.status(long).unwrap(), JobStatus::Running);
    assert!(svc.group().iter().any(|d| d.bytes_in_use() > 0));
    let (in_use, _) = svc.occupancy();
    assert_eq!(in_use, 2);

    svc.cancel(long).unwrap();
    assert_eq!(svc.status(long).unwrap(), JobStatus::Cancelled);
    assert_eq!(svc.occupancy().0, 1, "cancelled job's lease returned");
    svc.run_until_idle();
    assert_eq!(svc.status(short).unwrap(), JobStatus::Completed);
    // Zero leaked allocations: every byte the jobs allocated was freed.
    for d in svc.group().iter() {
        assert_eq!(d.bytes_in_use(), 0, "device {} leaked memory", d.index());
    }
    assert_eq!(svc.occupancy().0, 0);
    // The profiler saw every charge the timeline saw — cancellation did
    // not tear a device mid-record.
    for d in svc.group().iter() {
        CounterAsserts::capture(d).assert_profiler_matches_timeline();
    }
    // Cancelling a finished job is an idempotent no-op; unknown ids error.
    svc.cancel(long).unwrap();
    assert!(matches!(
        svc.cancel(JobId(999)),
        Err(ServeError::UnknownJob(_))
    ));
}

// ---- fleet fault tolerance ------------------------------------------------

/// Everything one chaos replay observes.
struct Chaos {
    results: Vec<RunResult>,
    manifest: Vec<String>,
    snapshot: Vec<u8>,
    events: Vec<ServeEvent>,
    /// Whether the planned device loss actually fired during the run.
    lost: bool,
    dev1_health: HealthState,
    total_rehomes: u64,
}

/// Replay a fixed 6-job trace (5 packed + 1 sharded, 3 tenants, mixed
/// priorities) over 2 devices, optionally losing device 1 permanently at
/// its `loss_ordinal`-th kernel launch.
fn chaos_trace(loss_ordinal: Option<u64>) -> Chaos {
    let group = DeviceGroup::v100s(2);
    if let Some(ord) = loss_ordinal {
        group.set_fault_plans(vec![
            FaultPlan::new(),
            FaultPlan::new().with_device_loss_at_launch(ord),
        ]);
    }
    let mut svc = Service::new(
        group,
        ServeConfig {
            slots_per_device: 2,
            slice_iters: 4,
            shard_threshold_particles: 64,
            ..ServeConfig::default()
        },
    );
    let objs: [Arc<dyn Objective>; 3] = [Arc::new(Sphere), Arc::new(Rastrigin), Arc::new(Griewank)];
    let mut ids: Vec<JobId> = Vec::new();
    for i in 0..5u64 {
        let req = OptimizeRequest::new(
            ["acme", "globex"][i as usize % 2],
            Arc::clone(&objs[i as usize % 3]),
            cfg(24 + 8 * (i as usize % 2), 4, 25, 900 + i),
        )
        .priority([Priority::Normal, Priority::High, Priority::Low][i as usize % 3]);
        ids.push(svc.submit(req).unwrap());
    }
    // One job large enough to shard over both devices.
    ids.push(
        svc.submit(OptimizeRequest::new(
            "initech",
            Arc::new(Sphere),
            cfg(64, 4, 25, 950),
        ))
        .unwrap(),
    );
    svc.run_until_idle();
    let results = ids
        .iter()
        .map(|&id| svc.result(id).unwrap().clone())
        .collect();
    let manifest = svc
        .merged_profiler()
        .kernels
        .iter()
        .map(|k| {
            format!(
                "{} dev{} grid{:?} block{:?} threads{}",
                k.name, k.device, k.grid, k.block, k.threads
            )
        })
        .collect();
    Chaos {
        results,
        manifest,
        snapshot: svc.snapshot(),
        events: svc.journal().events().to_vec(),
        lost: svc.group().device(1).unwrap().is_lost(),
        dev1_health: svc.health().state(1),
        total_rehomes: svc.records().iter().map(|r| r.rehomes).sum(),
    }
}

/// Exhaustive per-ordinal device-loss sweep: whatever launch the device
/// dies at, every affected job completes via re-homing with a result
/// bit-identical to the fault-free run, the lost device is quarantined and
/// never leased again, and each faulted scenario replays deterministically
/// (identical launch manifest and journal bytes).
#[test]
fn device_loss_sweep_rehomes_every_job_bit_identically() {
    let clean = chaos_trace(None);
    assert_eq!(clean.results.len(), 6);
    assert!(!clean.lost);
    assert_eq!(clean.total_rehomes, 0);
    for ord in [1, 7, 40, 90, 220] {
        let a = chaos_trace(Some(ord));
        let b = chaos_trace(Some(ord));
        assert_eq!(a.manifest, b.manifest, "ordinal {ord}: manifest drifted");
        assert_eq!(a.snapshot, b.snapshot, "ordinal {ord}: journal drifted");
        for (i, (fa, fc)) in a.results.iter().zip(&clean.results).enumerate() {
            CounterAsserts::assert_bit_identical_gbest(fa, fc);
            assert_eq!(
                fa.iterations, fc.iterations,
                "ordinal {ord}, job {i}: iteration count diverged under loss"
            );
        }
        if a.lost {
            assert!(
                a.total_rehomes >= 1,
                "ordinal {ord}: loss fired but nothing re-homed"
            );
            assert_eq!(
                a.dev1_health,
                HealthState::Quarantined,
                "ordinal {ord}: lost device must stay quarantined"
            );
            let first_rehome = a
                .events
                .iter()
                .position(|e| matches!(e, ServeEvent::Rehome { .. }))
                .expect("re-homing must be journaled");
            for e in &a.events[first_rehome..] {
                if let ServeEvent::Admit { job, devices } = e {
                    assert!(
                        !devices.contains(&1),
                        "ordinal {ord}: job#{job} leased the lost device"
                    );
                }
            }
        }
    }
}

/// The SSO/GFWA analogue of [`chaos_trace`]: a fixed 5-job trace mixing
/// both non-PSO engines (including one sharded GFWA job, whose per-shard
/// amplitude state must survive evacuation) over 2 devices, optionally
/// losing device 1 permanently at its `loss_ordinal`-th kernel launch.
fn algo_chaos_trace(loss_ordinal: Option<u64>) -> Chaos {
    use fastpso::Algorithm;
    let group = DeviceGroup::v100s(2);
    if let Some(ord) = loss_ordinal {
        group.set_fault_plans(vec![
            FaultPlan::new(),
            FaultPlan::new().with_device_loss_at_launch(ord),
        ]);
    }
    let mut svc = Service::new(
        group,
        ServeConfig {
            slots_per_device: 2,
            slice_iters: 4,
            shard_threshold_particles: 64,
            ..ServeConfig::default()
        },
    );
    let objs: [Arc<dyn Objective>; 2] = [Arc::new(Sphere), Arc::new(Rastrigin)];
    let mut ids: Vec<JobId> = Vec::new();
    for i in 0..4u64 {
        let algo = [Algorithm::Sso, Algorithm::Gfwa][i as usize % 2];
        let req = OptimizeRequest::new(
            ["acme", "globex"][i as usize % 2],
            Arc::clone(&objs[i as usize % 2]),
            cfg(24 + 8 * (i as usize % 2), 4, 25, 700 + i),
        )
        .algorithm(algo)
        .priority([Priority::Normal, Priority::High][i as usize % 2]);
        ids.push(svc.submit(req).unwrap());
    }
    // One GFWA job large enough to shard over both devices: re-homing it
    // must reconstruct the lost shard's amplitude buffer on the new home.
    ids.push(
        svc.submit(
            OptimizeRequest::new("initech", Arc::new(Sphere), cfg(64, 4, 25, 750))
                .algorithm(Algorithm::Gfwa),
        )
        .unwrap(),
    );
    svc.run_until_idle();
    let results = ids
        .iter()
        .map(|&id| svc.result(id).unwrap().clone())
        .collect();
    let manifest = svc
        .merged_profiler()
        .kernels
        .iter()
        .map(|k| {
            format!(
                "{} dev{} grid{:?} block{:?} threads{}",
                k.name, k.device, k.grid, k.block, k.threads
            )
        })
        .collect();
    Chaos {
        results,
        manifest,
        snapshot: svc.snapshot(),
        events: svc.journal().events().to_vec(),
        lost: svc.group().device(1).unwrap().is_lost(),
        dev1_health: svc.health().state(1),
        total_rehomes: svc.records().iter().map(|r| r.rehomes).sum(),
    }
}

/// Per-ordinal device-loss sweep over the SSO/GFWA trace: whatever launch
/// device 1 dies at, every job of both new engines completes via
/// re-homing with a result bit-identical to the fault-free run — i.e. the
/// checkpoints the scheduler resumes from carry the full algorithm state,
/// including GFWA's per-firework amplitudes — and every faulted scenario
/// replays deterministically.
#[test]
fn device_loss_sweep_rehomes_sso_and_gfwa_jobs_bit_identically() {
    let clean = algo_chaos_trace(None);
    assert_eq!(clean.results.len(), 5);
    assert!(!clean.lost);
    assert_eq!(clean.total_rehomes, 0);
    let mut losses = 0;
    for ord in [1, 9, 33, 80, 200] {
        let a = algo_chaos_trace(Some(ord));
        let b = algo_chaos_trace(Some(ord));
        assert_eq!(a.manifest, b.manifest, "ordinal {ord}: manifest drifted");
        assert_eq!(a.snapshot, b.snapshot, "ordinal {ord}: journal drifted");
        for (i, (fa, fc)) in a.results.iter().zip(&clean.results).enumerate() {
            CounterAsserts::assert_bit_identical_gbest(fa, fc);
            assert_eq!(
                fa.iterations, fc.iterations,
                "ordinal {ord}, job {i}: iteration count diverged under loss"
            );
        }
        if a.lost {
            losses += 1;
            assert!(
                a.total_rehomes >= 1,
                "ordinal {ord}: loss fired but nothing re-homed"
            );
            assert_eq!(
                a.dev1_health,
                HealthState::Quarantined,
                "ordinal {ord}: lost device must stay quarantined"
            );
            assert!(
                a.events
                    .iter()
                    .any(|e| matches!(e, ServeEvent::Rehome { .. })),
                "ordinal {ord}: re-homing must be journaled"
            );
        }
    }
    assert!(losses >= 3, "sweep must actually exercise device loss");
}

/// The island-model analogue of [`algo_chaos_trace`]: a fixed 5-job trace
/// of `Topology::Islands` jobs mixing all three migration kinds and two
/// periods over 2 devices, optionally losing device 1 permanently at its
/// `loss_ordinal`-th kernel launch. Island jobs keep their per-island
/// PRNG domains and migration schedule inside the ordinary plan
/// checkpoint, so evacuation and resume must be bit-identical — including
/// the `migrations` rollup, which replays from the checkpoint's iteration
/// rather than double-counting re-executed migration events.
fn island_chaos_trace(loss_ordinal: Option<u64>) -> Chaos {
    use fastpso::{Migration, MigrationKind, Topology};
    let group = DeviceGroup::v100s(2);
    if let Some(ord) = loss_ordinal {
        group.set_fault_plans(vec![
            FaultPlan::new(),
            FaultPlan::new().with_device_loss_at_launch(ord),
        ]);
    }
    let mut svc = Service::new(
        group,
        ServeConfig {
            slots_per_device: 2,
            slice_iters: 4,
            ..ServeConfig::default()
        },
    );
    let objs: [Arc<dyn Objective>; 2] = [Arc::new(Sphere), Arc::new(Rastrigin)];
    let kinds = [
        MigrationKind::Ring,
        MigrationKind::Star,
        MigrationKind::Random,
    ];
    let mut ids: Vec<JobId> = Vec::new();
    for i in 0..5u64 {
        let mut c = cfg(24 + 8 * (i as usize % 2), 4, 25, 800 + i);
        c.topology = Topology::Islands {
            islands: 2 + i as usize % 2,
            migration: Migration {
                kind: kinds[i as usize % 3],
                every_k: 3 + i as usize % 2,
                elites: 1 + i as usize % 2,
            },
        };
        let req = OptimizeRequest::new(
            ["acme", "globex", "initech"][i as usize % 3],
            Arc::clone(&objs[i as usize % 2]),
            c,
        )
        .priority([Priority::Normal, Priority::High][i as usize % 2]);
        ids.push(svc.submit(req).unwrap());
    }
    svc.run_until_idle();
    let results = ids
        .iter()
        .map(|&id| svc.result(id).unwrap().clone())
        .collect();
    let manifest = svc
        .merged_profiler()
        .kernels
        .iter()
        .map(|k| {
            format!(
                "{} dev{} grid{:?} block{:?} threads{}",
                k.name, k.device, k.grid, k.block, k.threads
            )
        })
        .collect();
    Chaos {
        results,
        manifest,
        snapshot: svc.snapshot(),
        events: svc.journal().events().to_vec(),
        lost: svc.group().device(1).unwrap().is_lost(),
        dev1_health: svc.health().state(1),
        total_rehomes: svc.records().iter().map(|r| r.rehomes).sum(),
    }
}

/// Per-ordinal device-loss sweep over the islands trace: whatever launch
/// device 1 dies at, every island job completes via re-homing with a
/// result — and a `migrations` rollup — bit-identical to the fault-free
/// run, and every faulted scenario replays deterministically. This is the
/// re-homing guarantee for island state: the checkpoint carries enough to
/// recompute every pending migration on the new device.
#[test]
fn device_loss_sweep_rehomes_island_jobs_bit_identically() {
    let clean = island_chaos_trace(None);
    assert_eq!(clean.results.len(), 5);
    assert!(!clean.lost);
    assert_eq!(clean.total_rehomes, 0);
    for r in &clean.results {
        assert!(r.migrations > 0, "every island job must actually migrate");
    }
    let mut losses = 0;
    for ord in [1, 9, 33, 80, 200] {
        let a = island_chaos_trace(Some(ord));
        let b = island_chaos_trace(Some(ord));
        assert_eq!(a.manifest, b.manifest, "ordinal {ord}: manifest drifted");
        assert_eq!(a.snapshot, b.snapshot, "ordinal {ord}: journal drifted");
        for (i, (fa, fc)) in a.results.iter().zip(&clean.results).enumerate() {
            CounterAsserts::assert_bit_identical_gbest(fa, fc);
            assert_eq!(
                fa.iterations, fc.iterations,
                "ordinal {ord}, job {i}: iteration count diverged under loss"
            );
            assert_eq!(
                fa.migrations, fc.migrations,
                "ordinal {ord}, job {i}: migration rollup diverged under loss"
            );
        }
        if a.lost {
            losses += 1;
            assert!(
                a.total_rehomes >= 1,
                "ordinal {ord}: loss fired but nothing re-homed"
            );
            assert_eq!(
                a.dev1_health,
                HealthState::Quarantined,
                "ordinal {ord}: lost device must stay quarantined"
            );
            assert!(
                a.events
                    .iter()
                    .any(|e| matches!(e, ServeEvent::Rehome { .. })),
                "ordinal {ord}: re-homing must be journaled"
            );
        }
    }
    assert!(losses >= 3, "sweep must actually exercise device loss");
}

/// Crash-safe journal: snapshotting a mid-flight service and replaying the
/// snapshot against a fresh group reproduces queue depth, the running set
/// and the job records — and re-serializes byte-for-byte. Corrupt bytes
/// and a wrong request list are rejected, not silently mis-restored.
#[test]
fn journal_snapshot_restore_is_byte_exact() {
    let serve_cfg = ServeConfig {
        slots_per_device: 1,
        slice_iters: 3,
        ..ServeConfig::default()
    };
    let requests: Vec<OptimizeRequest> = (0..6u64)
        .map(|i| {
            OptimizeRequest::new(
                ["acme", "globex", "initech"][i as usize % 3],
                Arc::new(Sphere) as Arc<dyn Objective>,
                cfg(16 + 8 * (i as usize % 2), 4, 40, 700 + i),
            )
            .priority([Priority::Low, Priority::Normal, Priority::High][i as usize % 3])
        })
        .collect();
    let mut svc = Service::new(DeviceGroup::v100s(2), serve_cfg.clone());
    let ids: Vec<JobId> = requests
        .iter()
        .map(|r| svc.submit(r.clone()).unwrap())
        .collect();
    svc.tick();
    svc.tick();
    svc.cancel(ids[3]).unwrap(); // cancel becomes a journaled input event
    svc.tick();
    // Snapshot mid-flight: jobs queued, running and finished all at once.
    assert!(svc.queue_depth() > 0 && svc.n_running() > 0);
    let snap = svc.snapshot();

    let restored = Service::restore(
        DeviceGroup::v100s(2),
        serve_cfg.clone(),
        &snap,
        requests.clone(),
    )
    .unwrap();
    assert_eq!(restored.queue_depth(), svc.queue_depth());
    assert_eq!(restored.running_ids(), svc.running_ids());
    assert_eq!(restored.records(), svc.records());
    assert_eq!(
        restored.now(),
        svc.now(),
        "modeled clock must replay exactly"
    );
    assert_eq!(
        restored.snapshot(),
        snap,
        "re-serialization must be byte-exact"
    );

    // A flipped byte is detected, not replayed.
    let mut torn = snap.clone();
    let mid = torn.len() / 2;
    torn[mid] ^= 0x40;
    assert!(matches!(
        Service::restore(
            DeviceGroup::v100s(2),
            serve_cfg.clone(),
            &torn,
            requests.clone()
        ),
        Err(ServeError::JournalCorrupt(_))
    ));
    // A wrong request list diverges and is rejected.
    assert!(matches!(
        Service::restore(DeviceGroup::v100s(2), serve_cfg.clone(), &snap, Vec::new()),
        Err(ServeError::RestoreMismatch(_))
    ));

    // Both services drive to idle along the same trajectory.
    let mut svc = svc;
    let mut restored = restored;
    svc.run_until_idle();
    restored.run_until_idle();
    for &id in &ids {
        if id == ids[3] {
            continue; // cancelled
        }
        let a = svc.result(id).unwrap();
        let b = restored.result(id).unwrap();
        CounterAsserts::assert_bit_identical_gbest(a, b);
    }
    assert_eq!(svc.snapshot(), restored.snapshot());
}

/// Regression for the lease-accounting race: a job cancelled while its
/// device is lost must release its lease exactly once, in both orderings
/// (cancel after the re-homing sweep ran, and cancel while the job still
/// holds a lease spanning the dead device).
#[test]
fn cancellation_during_device_loss_releases_each_lease_exactly_once() {
    // Ordering A: the loss is noticed first (the slice errors and the job
    // is re-homed to the queue), then the submitter cancels.
    let group = DeviceGroup::v100s(2);
    group.set_fault_plans(vec![
        FaultPlan::new(),
        FaultPlan::new().with_device_loss_at_launch(9),
    ]);
    let mut svc = Service::new(
        group,
        ServeConfig {
            slots_per_device: 1,
            slice_iters: 3,
            ..ServeConfig::default()
        },
    );
    let a = svc
        .submit(OptimizeRequest::new(
            "t",
            Arc::new(Sphere),
            cfg(24, 4, 500, 1),
        ))
        .unwrap();
    let b = svc
        .submit(OptimizeRequest::new(
            "t",
            Arc::new(Rastrigin),
            cfg(24, 4, 500, 2),
        ))
        .unwrap();
    let mut guard = 0;
    while !svc.group().device(1).unwrap().is_lost() {
        svc.tick();
        guard += 1;
        assert!(guard < 50, "loss never fired");
    }
    svc.tick(); // re-homing sweep requeues the stranded job
    assert_eq!(svc.occupancy().0, 1, "only the healthy device's lease held");
    svc.cancel(b).unwrap();
    svc.cancel(a).unwrap();
    assert_eq!(svc.occupancy().0, 0, "every lease released exactly once");
    assert_eq!(svc.status(a).unwrap(), JobStatus::Cancelled);
    assert_eq!(svc.status(b).unwrap(), JobStatus::Cancelled);
    svc.run_until_idle();
    assert_eq!(svc.group().device(0).unwrap().bytes_in_use(), 0);

    // Ordering B: cancel lands while the job still holds a lease spanning
    // the dead device (a resilient sharded job survives the loss inside
    // its slice, so the serve layer hasn't swept it yet).
    let group = DeviceGroup::v100s(2);
    group.set_fault_plans(vec![
        FaultPlan::new(),
        FaultPlan::new().with_device_loss_at_launch(30),
    ]);
    let mut svc = Service::new(
        group,
        ServeConfig {
            slots_per_device: 1,
            slice_iters: 4,
            shard_threshold_particles: 64,
            ..ServeConfig::default()
        },
    );
    let j = svc
        .submit(
            OptimizeRequest::new("t", Arc::new(Sphere), cfg(64, 4, 500, 3))
                .resilient(ResilienceConfig::default()),
        )
        .unwrap();
    let mut guard = 0;
    while !svc.group().device(1).unwrap().is_lost() {
        svc.tick();
        guard += 1;
        assert!(guard < 50, "loss never fired");
    }
    // The resilient job absorbed the loss mid-slice and is still running
    // on a lease that includes the dead device.
    assert_eq!(svc.status(j).unwrap(), JobStatus::Running);
    svc.cancel(j).unwrap();
    assert_eq!(
        svc.occupancy().0,
        0,
        "lease spanning the dead device released once"
    );
    assert_eq!(svc.status(j).unwrap(), JobStatus::Cancelled);
    svc.run_until_idle();
    assert_eq!(svc.group().device(0).unwrap().bytes_in_use(), 0);
}

// ---- predictive admission ------------------------------------------------

/// Path of the pinned per-strategy calibration tolerance table.
const TOLERANCE_GOLDEN: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/results/predictor_tolerance.golden.txt"
);

/// The calibration regression's 32-job trace: heterogeneous shapes cycling
/// through every update strategy.
fn calib_job(i: u64) -> (PsoConfig, UpdateStrategy, Arc<dyn Objective>) {
    let cfg = cfg(
        32 + 32 * (i as usize % 3),
        4 * (1 + (i as usize % 4)),
        40 + 10 * (i as usize % 3),
        3000 + i,
    );
    let strategy = UpdateStrategy::ALL[i as usize % UpdateStrategy::ALL.len()];
    let obj: Arc<dyn Objective> = match i % 3 {
        0 => Arc::new(Sphere),
        1 => Arc::new(Rastrigin),
        _ => Arc::new(Griewank),
    };
    (cfg, strategy, obj)
}

/// After replaying a 32-job trace, the calibrated predictor agrees with
/// every observed job's device-seconds to within the per-strategy
/// tolerance pinned in `results/predictor_tolerance.golden.txt`. The
/// golden is the tolerance table itself: regenerating it
/// (`UPDATE_GOLDEN=1`) re-derives each strategy's bound from the observed
/// worst case, so any model drift shows up as a reviewable diff.
#[test]
fn calibrated_predictor_matches_observed_costs_within_pinned_tolerances() {
    let mut svc = Service::new(
        DeviceGroup::v100s(2),
        ServeConfig {
            slots_per_device: 2,
            slice_iters: 10,
            ..ServeConfig::default()
        },
    );
    let mut jobs = Vec::new();
    for i in 0..32u64 {
        let (cfg, strategy, obj) = calib_job(i);
        let id = svc
            .submit(OptimizeRequest::new("calib", obj.clone(), cfg.clone()).strategy(strategy))
            .unwrap();
        jobs.push((id, cfg, strategy, obj, fastpso::Algorithm::Pso));
    }
    // Eight more jobs on the non-PSO engines: their observations calibrate
    // the algorithm-qualified rungs (`sso:global`, `gfwa:global`) without
    // touching any PSO coefficient.
    for i in 32..40u64 {
        let (cfg, _, obj) = calib_job(i);
        let algo = [fastpso::Algorithm::Sso, fastpso::Algorithm::Gfwa][i as usize % 2];
        let id = svc
            .submit(OptimizeRequest::new("calib", obj.clone(), cfg.clone()).algorithm(algo))
            .unwrap();
        jobs.push((id, cfg, UpdateStrategy::GlobalMem, obj, algo));
    }
    svc.run_until_idle();

    // Worst relative error per calibration rung, final calibrated
    // predictor vs each job's observed device-seconds.
    let mut max_err: std::collections::BTreeMap<String, f64> = Default::default();
    for (id, cfg, strategy, obj, algo) in &jobs {
        let rec = svc
            .records()
            .iter()
            .find(|r| r.job == id.0)
            .expect("every job has a record");
        assert_eq!(rec.outcome, perf_model::JobOutcome::Completed);
        let shape = perf_model::JobShape {
            particles: cfg.n_particles as u64,
            dim: cfg.dim as u64,
            iterations: rec.iterations as u64,
            shards: 1,
            flops_per_dim: obj.flops_per_dim(),
            strategy: strategy.to_string(),
            algo: algo.to_string(),
            persistent: false,
            slice_iters: 0,
            islands: 1,
            migrate_every: 0,
        };
        let err = svc.predictor().relative_error(&shape, rec.device_seconds);
        let slot = max_err.entry(shape.calibration_key()).or_insert(0.0);
        *slot = slot.max(err);
    }
    for strategy in UpdateStrategy::ALL {
        assert!(
            svc.predictor().observations(&strategy.to_string()) > 0,
            "{strategy} never calibrated"
        );
    }
    for key in ["sso:global", "gfwa:global"] {
        assert!(
            svc.predictor().observations(key) > 0,
            "{key} never calibrated"
        );
    }

    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        let mut out = String::from("# strategy,tolerance (max observed relative error * 1.25)\n");
        for (strategy, err) in &max_err {
            out.push_str(&format!("{strategy},{:.4}\n", (err * 1.25).max(0.02)));
        }
        std::fs::write(TOLERANCE_GOLDEN, out).expect("write tolerance golden");
        return;
    }
    let golden = std::fs::read_to_string(TOLERANCE_GOLDEN).expect(
        "tolerance golden missing; regenerate with UPDATE_GOLDEN=1 cargo test --test serve",
    );
    let mut pinned: std::collections::BTreeMap<&str, f64> = Default::default();
    for line in golden
        .lines()
        .filter(|l| !l.starts_with('#') && !l.is_empty())
    {
        let (strategy, tol) = line.split_once(',').expect("strategy,tolerance");
        pinned.insert(strategy, tol.parse().expect("tolerance is a float"));
    }
    for (strategy, err) in &max_err {
        let tol = pinned
            .get(strategy.as_str())
            .unwrap_or_else(|| panic!("{strategy} missing from the tolerance golden"));
        assert!(
            err <= tol,
            "{strategy}: calibrated prediction error {err:.4} exceeds the pinned \
             tolerance {tol:.4} (if the cost model changed intentionally: \
             UPDATE_GOLDEN=1 cargo test --test serve)"
        );
    }
}

/// The overload scenario of `serve_bench --overload`, shrunk and pinned:
/// on the same deterministic trace, blind admission sheds mid-flight while
/// predictive admission converts every shed into an up-front rejection and
/// at least doubles deadline-met goodput.
#[test]
fn predictive_admission_beats_blind_shedding_on_the_pinned_overload_trace() {
    let overload_run = |predictive: bool| {
        let mut svc = Service::new(
            DeviceGroup::v100s(2),
            ServeConfig {
                slots_per_device: 4,
                slice_iters: 10,
                predictive_admission: predictive,
                admission_headroom: 1.2,
                ..ServeConfig::default()
            },
        );
        // Calibration warmup, then a burst of identical tight deadlines.
        for i in 0..4u64 {
            svc.submit(OptimizeRequest::new(
                "warmup",
                Arc::new(Sphere),
                cfg(64, 8, 80, 4000 + i),
            ))
            .unwrap();
        }
        svc.run_until_idle();
        let warm_goodput = svc.goodput_s();
        let mut ids = Vec::new();
        let mut rejected = 0u64;
        for i in 0..12u64 {
            let req = OptimizeRequest::new("burst", Arc::new(Sphere), cfg(64, 8, 80, 4100 + i))
                .deadline_s(0.05);
            match svc.submit(req) {
                Ok(id) => ids.push(id),
                Err(ServeError::Infeasible { .. }) => rejected += 1,
                Err(e) => panic!("unexpected submit error: {e}"),
            }
        }
        svc.run_until_idle();
        let shed = ids
            .iter()
            .filter(|&&id| svc.status(id).unwrap() == JobStatus::Shed)
            .count() as u64;
        let completed = ids
            .iter()
            .filter(|&&id| svc.status(id).unwrap() == JobStatus::Completed)
            .count() as u64;
        (rejected, shed, completed, svc.goodput_s() - warm_goodput)
    };

    let (blind_rej, blind_shed, blind_done, blind_goodput) = overload_run(false);
    let (pred_rej, pred_shed, pred_done, pred_goodput) = overload_run(true);

    // Pinned counts: the trace is deterministic, so any admission or
    // scheduling change that shifts these is a reviewable regression.
    assert_eq!(
        (blind_rej, blind_shed, blind_done),
        (0, 12, 0),
        "blind scheduler outcome drifted"
    );
    assert_eq!(
        (pred_rej, pred_shed, pred_done),
        (7, 0, 5),
        "predictive scheduler outcome drifted"
    );
    assert!(
        pred_goodput > 0.0 && (blind_goodput == 0.0 || pred_goodput / blind_goodput >= 2.0),
        "expected >= 2x goodput: predictive {pred_goodput:.4}s vs blind {blind_goodput:.4}s"
    );
}

// ---- cross-job micro-batching ---------------------------------------------

/// Small always-batchable job configs: one dim-class (6 → class 8) and
/// distinct particle counts, so every job's kernel records are
/// identifiable in a merged manifest by thread count.
fn small_cfg(i: u64) -> PsoConfig {
    cfg(
        8 + 4 * (i as usize % 6),
        6,
        20 + 5 * (i as usize % 3),
        6000 + i,
    )
}

/// Replay a 6-job batched trace on 2 devices, optionally losing device 0
/// (the device the first batch leases) at its `loss_ordinal`-th launch.
fn batched_chaos(loss_ordinal: Option<u64>) -> (Vec<RunResult>, bool, u64, HealthState) {
    let group = DeviceGroup::v100s(2);
    if let Some(ord) = loss_ordinal {
        group.set_fault_plans(vec![
            FaultPlan::new().with_device_loss_at_launch(ord),
            FaultPlan::new(),
        ]);
    }
    let mut svc = Service::new(
        group,
        ServeConfig {
            slots_per_device: 2,
            slice_iters: 4,
            checkpoint_slices: 1,
            batching: Some(BatchPolicy::default()),
            ..ServeConfig::default()
        },
    );
    let ids: Vec<JobId> = (0..6)
        .map(|i| {
            svc.submit(OptimizeRequest::new("t", Arc::new(Sphere), small_cfg(i)))
                .unwrap()
        })
        .collect();
    svc.run_until_idle();
    let results = ids
        .iter()
        .map(|&id| svc.result(id).unwrap().clone())
        .collect();
    (
        results,
        svc.group().device(0).unwrap().is_lost(),
        svc.records().iter().map(|r| r.rehomes).sum(),
        svc.health().state(0),
    )
}

/// Losing the device that hosts a whole micro-batch mid-run strands every
/// member at once; the re-homing sweep must requeue them, re-batch them on
/// the surviving device and finish each one bit-identical to a dedicated
/// solo run — at every loss ordinal swept.
#[test]
fn device_loss_mid_batch_rehomes_every_member_bit_identically() {
    use fastpso::{GpuBackend, PsoBackend};
    let solo: Vec<RunResult> = (0..6)
        .map(|i| GpuBackend::new().run(&small_cfg(i), &Sphere).unwrap())
        .collect();
    let (clean, lost, rehomes, _) = batched_chaos(None);
    assert!(!lost);
    assert_eq!(rehomes, 0, "fault-free batched run must not re-home");
    for (a, b) in clean.iter().zip(&solo) {
        CounterAsserts::assert_bit_identical_gbest(a, b);
    }
    let mut fired = 0;
    for ord in [1u64, 4, 9, 20, 45, 120] {
        let (results, lost, rehomes, health) = batched_chaos(Some(ord));
        for (i, (a, b)) in results.iter().zip(&solo).enumerate() {
            assert_eq!(
                a.best_value.to_bits(),
                b.best_value.to_bits(),
                "ordinal {ord}: batch member {i} drifted under device loss"
            );
            CounterAsserts::assert_bit_identical_gbest(a, b);
        }
        if lost {
            fired += 1;
            assert!(
                rehomes >= 1,
                "ordinal {ord}: the stranded batch never re-homed"
            );
            assert_eq!(
                health,
                HealthState::Quarantined,
                "ordinal {ord}: lost device must stay quarantined"
            );
        }
    }
    assert!(fired >= 2, "the sweep never exercised a mid-batch loss");
}

/// Path of the pinned batched/persistent calibration tolerance table.
const BATCHED_TOLERANCE_GOLDEN: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/results/predictor_tolerance_batched.golden.txt"
);

/// With batching on, batchable shapes predict and observe under the
/// `<strategy>+persistent` calibration rung (one launch per batch-slice,
/// not one per kernel). After replaying a per-strategy block trace of
/// small batched jobs, the calibrated predictor agrees with every job's
/// observed device-seconds to within the tolerances pinned in
/// `results/predictor_tolerance_batched.golden.txt` (regenerate with
/// `UPDATE_GOLDEN=1 cargo test --test serve`).
#[test]
fn batched_calibration_matches_observed_costs_within_pinned_tolerances() {
    let mut svc = Service::new(
        DeviceGroup::v100s(2),
        ServeConfig {
            slots_per_device: 2,
            slice_iters: 10,
            batching: Some(BatchPolicy::default()),
            ..ServeConfig::default()
        },
    );
    let mut jobs = Vec::new();
    // One homogeneous block per strategy so every job actually batches —
    // blocks are separated by run_until_idle to keep composition pinned.
    for (b, &strategy) in UpdateStrategy::ALL.iter().enumerate() {
        for i in 0..6u64 {
            let cfg = cfg(
                16 + 8 * (i as usize % 3),
                5 + (i as usize % 3),
                40 + 10 * (i as usize % 3),
                5000 + 100 * b as u64 + i,
            );
            let id = svc
                .submit(
                    OptimizeRequest::new("calib", Arc::new(Sphere), cfg.clone()).strategy(strategy),
                )
                .unwrap();
            jobs.push((id, cfg, strategy));
        }
        svc.run_until_idle();
    }

    let mut max_err: std::collections::BTreeMap<String, f64> = Default::default();
    for (id, cfg, strategy) in &jobs {
        let rec = svc
            .records()
            .iter()
            .find(|r| r.job == id.0)
            .expect("every job has a record");
        assert_eq!(rec.outcome, perf_model::JobOutcome::Completed);
        let shape = perf_model::JobShape {
            particles: cfg.n_particles as u64,
            dim: cfg.dim as u64,
            iterations: rec.iterations as u64,
            shards: 1,
            flops_per_dim: Sphere.flops_per_dim(),
            strategy: strategy.to_string(),
            algo: "pso".to_string(),
            persistent: true,
            slice_iters: 10,
            islands: 1,
            migrate_every: 0,
        };
        let err = svc.predictor().relative_error(&shape, rec.device_seconds);
        let slot = max_err
            .entry(format!("{strategy}+persistent"))
            .or_insert(0.0);
        *slot = slot.max(err);
    }
    for strategy in UpdateStrategy::ALL {
        assert!(
            svc.predictor()
                .observations(&format!("{strategy}+persistent"))
                > 0,
            "{strategy} never calibrated on its persistent rung"
        );
    }

    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        let mut out =
            String::from("# strategy+persistent,tolerance (max observed relative error * 1.25)\n");
        for (key, err) in &max_err {
            out.push_str(&format!("{key},{:.4}\n", (err * 1.25).max(0.02)));
        }
        std::fs::write(BATCHED_TOLERANCE_GOLDEN, out).expect("write batched tolerance golden");
        return;
    }
    let golden = std::fs::read_to_string(BATCHED_TOLERANCE_GOLDEN).expect(
        "batched tolerance golden missing; regenerate with UPDATE_GOLDEN=1 cargo test --test serve",
    );
    let mut pinned: std::collections::BTreeMap<&str, f64> = Default::default();
    for line in golden
        .lines()
        .filter(|l| !l.starts_with('#') && !l.is_empty())
    {
        let (key, tol) = line.split_once(',').expect("key,tolerance");
        pinned.insert(key, tol.parse().expect("tolerance is a float"));
    }
    for (key, err) in &max_err {
        let tol = pinned
            .get(key.as_str())
            .unwrap_or_else(|| panic!("{key} missing from the batched tolerance golden"));
        assert!(
            err <= tol,
            "{key}: calibrated prediction error {err:.4} exceeds the pinned \
             tolerance {tol:.4} (if the batched cost model changed intentionally: \
             UPDATE_GOLDEN=1 cargo test --test serve)"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Random batch compositions: jobs fused into one micro-batch finish
    /// with gbest bytes identical to dedicated solo runs, and the batched
    /// launch manifest carries exactly the same per-job kernel work
    /// (names × thread counts) as the solo runs, minus only the
    /// `batched_slice` region records — batching changes *when* passes
    /// dispatch, never *what* they compute.
    #[test]
    fn batched_jobs_match_solo_bitwise_for_random_compositions(
        n_jobs in 2usize..7,
        d in 5usize..9,
        iters_base in 3usize..8,
        seed in 0u64..1_000,
    ) {
        use fastpso::{GpuBackend, PsoBackend};
        // Distinct particle counts per job keep per-job kernel records
        // identifiable by thread count in the merged manifest.
        let configs: Vec<PsoConfig> = (0..n_jobs)
            .map(|i| cfg(8 + 4 * i, d, 5 * (iters_base + i % 3), 8_000 + seed * 10 + i as u64))
            .collect();
        let mut expected = Vec::new();
        let mut solo_work: Vec<(String, u64)> = Vec::new();
        for c in &configs {
            let b = GpuBackend::new();
            expected.push(b.run(c, &Sphere).unwrap());
            solo_work.extend(b.profile().kernels.iter().map(|k| (k.name.to_string(), k.threads)));
        }
        let mut svc = Service::new(
            DeviceGroup::v100s(1),
            ServeConfig {
                slots_per_device: n_jobs,
                slice_iters: 6,
                checkpoint_slices: 1,
                batching: Some(BatchPolicy::default()),
                ..ServeConfig::default()
            },
        );
        let ids: Vec<JobId> = configs
            .iter()
            .map(|c| {
                svc.submit(OptimizeRequest::new("t", Arc::new(Sphere), c.clone()))
                    .unwrap()
            })
            .collect();
        svc.run_until_idle();
        for (id, want) in ids.iter().zip(&expected) {
            let got = svc.result(*id).unwrap();
            prop_assert_eq!(got.best_value.to_bits(), want.best_value.to_bits());
            let gb: Vec<u32> = got.best_position.iter().map(|v| v.to_bits()).collect();
            let wb: Vec<u32> = want.best_position.iter().map(|v| v.to_bits()).collect();
            prop_assert_eq!(gb, wb, "batched member position drifted from solo");
        }
        let mut batched_work: Vec<(String, u64)> = svc
            .merged_profiler()
            .kernels
            .iter()
            .filter(|k| k.name != "batched_slice")
            .map(|k| (k.name.to_string(), k.threads))
            .collect();
        solo_work.sort();
        batched_work.sort();
        prop_assert_eq!(batched_work, solo_work, "per-job kernel work drifted under batching");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Random submit/cancel/tick interleavings never violate the admission
    /// invariants: a job accepted under predictive admission was feasible
    /// at admit time (`admission_plan` agrees with `submit`), infeasible
    /// rejections are loud (an error, never a silent drop or a journal
    /// entry), and after draining, queue occupancy, leases and device
    /// bytes all return to zero with exactly one record per accepted job.
    #[test]
    fn admission_invariants_hold_under_random_interleavings(
        ops in prop::collection::vec(0u8..8, 1..28),
        args in prop::collection::vec(0u8..255, 28..29),
        predictive in any::<bool>(),
    ) {
        let mut svc = Service::new(
            DeviceGroup::v100s(2),
            ServeConfig {
                slots_per_device: 2,
                slice_iters: 5,
                queue_capacity: 8,
                predictive_admission: predictive,
                admission_headroom: 1.1,
                ..ServeConfig::default()
            },
        );
        let mut submitted: Vec<JobId> = Vec::new();
        for (step, &op) in ops.iter().enumerate() {
            let arg = args[step % args.len()];
            match op {
                0..=3 => {
                    let mut req = OptimizeRequest::new(
                        "t",
                        Arc::new(Sphere),
                        cfg(
                            16 + 8 * (arg as usize % 3),
                            4,
                            10 + 10 * (arg as usize % 3),
                            7000 + arg as u64,
                        ),
                    )
                    .strategy(UpdateStrategy::ALL[arg as usize % UpdateStrategy::ALL.len()]);
                    req = match arg % 4 {
                        0 => req,                     // no deadline
                        1 => req.deadline_s(1e3),     // generous
                        2 => req.deadline_s(1e-9),    // impossible
                        _ => req.deadline_s(0.02),    // tight
                    };
                    let plan = svc.admission_plan(&req);
                    let journal_before = svc.journal().events().len();
                    match svc.submit(req) {
                        Ok(id) => {
                            prop_assert!(
                                plan.is_ok(),
                                "accepted job was predicted infeasible at admit"
                            );
                            submitted.push(id);
                        }
                        Err(ServeError::Infeasible { predicted_s, budget_s }) => {
                            prop_assert!(predictive, "blind admission never rejects Infeasible");
                            prop_assert!(plan.is_err(), "dry-run disagrees with submit");
                            prop_assert!(predicted_s > budget_s);
                            prop_assert_eq!(
                                svc.journal().events().len(),
                                journal_before,
                                "rejected submissions must never be journaled"
                            );
                        }
                        Err(ServeError::QueueFull { .. }) => {
                            prop_assert_eq!(svc.journal().events().len(), journal_before);
                        }
                        Err(e) => prop_assert!(false, "unexpected submit error: {e}"),
                    }
                }
                4 | 5 => {
                    svc.tick();
                }
                _ => {
                    if !submitted.is_empty() {
                        // Cancelling any known id is always legal (a no-op
                        // once the job is terminal).
                        let id = submitted[arg as usize % submitted.len()];
                        svc.cancel(id).unwrap();
                    }
                }
            }
        }
        svc.run_until_idle();
        prop_assert_eq!(svc.queue_depth(), 0, "queue drained");
        prop_assert_eq!(svc.occupancy().0, 0, "all leases returned");
        for d in 0..2 {
            prop_assert_eq!(
                svc.group().device(d).unwrap().bytes_in_use(),
                0,
                "device buffers freed"
            );
        }
        for &id in &submitted {
            prop_assert!(svc.status(id).unwrap().is_terminal());
        }
        prop_assert_eq!(
            svc.records().len(),
            submitted.len(),
            "exactly one record per accepted job — rejects never reach the records"
        );
    }
}
