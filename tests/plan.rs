//! Execution-plan equivalence suite: the declarative plan executor must be
//! observationally identical to the four hand-rolled run loops it replaced,
//! and the plan-rewrite passes must change *only* what they claim to.
//!
//! * A recorded golden (`results/plan_equivalence.golden.txt`) pins the
//!   bit pattern of `gbest` and the full kernel-launch manifest per
//!   [`UpdateStrategy`]. Regenerate with
//!   `UPDATE_GOLDEN=1 cargo test --test plan`.
//! * A proptest pins the fusion pass's contract: every profiler counter is
//!   preserved except `kernel_launches` (one launch saved per iteration),
//!   and the trajectory is bit-identical.
//! * The stream pass may only re-time launches: identical results and
//!   counters, strictly smaller modeled wall time.

use fastpso_suite::fastpso::{
    Algorithm, CounterAsserts, GpuBackend, PsoBackend, PsoConfig, UpdateStrategy,
};
use fastpso_suite::functions::builtins::Sphere;
use proptest::prelude::*;

const GOLDEN: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/results/plan_equivalence.golden.txt"
);

fn cfg(n: usize, d: usize, iters: usize, seed: u64) -> PsoConfig {
    PsoConfig::builder(n, d)
        .max_iter(iters)
        .seed(seed)
        .build()
        .unwrap()
}

/// One strategy's section of the golden: the raw bit pattern of the final
/// `gbest` (value and position) followed by the sorted launch manifest.
fn strategy_section(strategy: UpdateStrategy) -> String {
    let b = GpuBackend::new().strategy(strategy);
    let r = b.run(&cfg(64, 8, 6, 42), &Sphere).unwrap();
    let mut out = format!("[{strategy}]\n");
    out.push_str(&format!(
        "gbest_value_bits,{:016x}\n",
        r.best_value.to_bits()
    ));
    let pos: Vec<String> = r
        .best_position
        .iter()
        .map(|x| format!("{:08x}", x.to_bits()))
        .collect();
    out.push_str(&format!("gbest_pos_bits,{}\n", pos.join(":")));
    for (name, count) in b.profile().counts_by_name() {
        out.push_str(&format!("{strategy},{name},{count}\n"));
    }
    out
}

/// One non-PSO engine's section of the golden, same shape as
/// [`strategy_section`]: the final `gbest` bit pattern and the sorted
/// launch manifest of the SSO or GFWA plan on the same workload.
fn algorithm_section(algo: Algorithm) -> String {
    let b = GpuBackend::new().algorithm(algo);
    let r = b.run(&cfg(64, 8, 6, 42), &Sphere).unwrap();
    let mut out = format!("[{algo}]\n");
    out.push_str(&format!(
        "gbest_value_bits,{:016x}\n",
        r.best_value.to_bits()
    ));
    let pos: Vec<String> = r
        .best_position
        .iter()
        .map(|x| format!("{:08x}", x.to_bits()))
        .collect();
    out.push_str(&format!("gbest_pos_bits,{}\n", pos.join(":")));
    for (name, count) in b.profile().counts_by_name() {
        out.push_str(&format!("{algo},{name},{count}\n"));
    }
    out
}

/// The plan executor reproduces bit-identical `gbest` and a byte-identical
/// launch manifest versus the recorded golden, for every strategy and for
/// both non-PSO engines. This is the refactor's safety net: any silent
/// change to trajectory or launch structure — a reordered node, a renamed
/// kernel, an extra launch — shows up as a golden diff.
#[test]
fn executor_matches_recorded_golden_for_every_strategy() {
    let mut actual = String::new();
    for strategy in UpdateStrategy::ALL {
        actual.push_str(&strategy_section(strategy));
    }
    for algo in [Algorithm::Sso, Algorithm::Gfwa] {
        actual.push_str(&algorithm_section(algo));
    }
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(GOLDEN, &actual).expect("write golden");
        return;
    }
    let expected = std::fs::read_to_string(GOLDEN)
        .expect("golden missing; regenerate with UPDATE_GOLDEN=1 cargo test --test plan");
    assert_eq!(
        actual, expected,
        "plan executor diverged from the recorded golden \
         (if intentional: UPDATE_GOLDEN=1 cargo test --test plan)"
    );
}

/// Fusion's whole contract in one check, under arbitrary configurations:
/// bit-identical trajectory, every profiler counter preserved except
/// `kernel_launches`, and exactly one launch saved per iteration (the
/// velocity/position pair becomes one fused kernel).
fn assert_fusion_preserves_counters(strategy: UpdateStrategy, c: &PsoConfig) {
    let split_b = GpuBackend::new().strategy(strategy).fused(false);
    let split_r = split_b.run(c, &Sphere).unwrap();
    let split = CounterAsserts::capture(split_b.device());

    let fused_b = GpuBackend::new().strategy(strategy).fused(true);
    let fused_r = fused_b.run(c, &Sphere).unwrap();
    let fused = CounterAsserts::capture(fused_b.device());

    CounterAsserts::assert_bit_identical_gbest(&split_r, &fused_r);

    let mut sc = split.counters();
    let mut fc = fused.counters();
    assert_eq!(
        sc.kernel_launches,
        fc.kernel_launches + c.max_iter as u64,
        "{strategy:?}: fusion must save exactly one launch per iteration"
    );
    sc.kernel_launches = 0;
    fc.kernel_launches = 0;
    assert_eq!(
        sc, fc,
        "{strategy:?}: fusion must preserve every counter except launches"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn fusion_preserves_all_counters_except_launch_count(
        n in 2usize..40,
        d in 1usize..12,
        iters in 2usize..10,
        seed in any::<u64>(),
    ) {
        let c = cfg(n, d, iters, seed);
        // The pass rewrites only the untiled element-wise strategies.
        assert_fusion_preserves_counters(UpdateStrategy::GlobalMem, &c);
        assert_fusion_preserves_counters(UpdateStrategy::ForLoop, &c);
    }
}

/// For the tiled strategies the fusion pass is an identity: requesting it
/// changes nothing at all — not even the launch count.
#[test]
fn fusion_is_identity_for_tiled_strategies() {
    let c = cfg(48, 16, 5, 7);
    for strategy in [UpdateStrategy::SharedMem, UpdateStrategy::TensorCore] {
        let plain_b = GpuBackend::new().strategy(strategy);
        let plain_r = plain_b.run(&c, &Sphere).unwrap();
        let plain = CounterAsserts::capture(plain_b.device());

        let fused_b = GpuBackend::new().strategy(strategy).fused(true);
        assert!(
            !fused_b.plan(&c).is_fused(),
            "{strategy:?}: the pass must decline tiled kernels"
        );
        let fused_r = fused_b.run(&c, &Sphere).unwrap();
        let fused = CounterAsserts::capture(fused_b.device());

        CounterAsserts::assert_bit_identical_gbest(&plain_r, &fused_r);
        assert_eq!(plain.counters(), fused.counters(), "{strategy:?}");
    }
}

/// The stream pass re-times launches but never reorders them: identical
/// `gbest`, identical counters, positive overlap credit, and a strictly
/// smaller modeled wall time.
#[test]
fn streams_only_retime_never_reorder() {
    let c = cfg(256, 16, 10, 42);
    for strategy in UpdateStrategy::ALL {
        let off_b = GpuBackend::new().strategy(strategy);
        let off_r = off_b.run(&c, &Sphere).unwrap();
        let off = CounterAsserts::capture(off_b.device());

        let on_b = GpuBackend::new().strategy(strategy).streams(true);
        let on_r = on_b.run(&c, &Sphere).unwrap();
        let on = CounterAsserts::capture(on_b.device());

        CounterAsserts::assert_bit_identical_gbest(&off_r, &on_r);
        assert_eq!(off.counters(), on.counters(), "{strategy:?}");
        assert!(
            on_r.timeline.overlapped_seconds() > 0.0,
            "{strategy:?}: weight generation must overlap the eval chain"
        );
        assert!(
            on_r.elapsed_seconds() < off_r.elapsed_seconds(),
            "{strategy:?}: hidden time must shrink the modeled wall clock"
        );
    }
}
