//! Counter-assertion regression tests: every FastPSO optimization claim,
//! locked in as an exact invariant over the device profiler.
//!
//! All quantities are *modeled* — launch counts, driver allocations,
//! global-memory traffic — so each assertion is deterministic and exact
//! (no tolerance windows). The suite pins:
//!
//! * the caching allocator's zero steady-state driver allocations
//!   (Table 4) for **all four** swarm-update strategies, and the
//!   `Realloc` contrast paying a driver round-trip per request;
//! * the per-iteration kernel-launch schedule, per strategy, by name;
//! * the traffic ordering `TensorCore ≤ SharedMemTiled < GlobalMem`
//!   (Figure 6's axes);
//! * profiler totals equal timeline totals to the last byte;
//! * bit-identical `gbest` across the bit-exact strategies;
//! * retried operations after injected faults charging to
//!   [`Phase::Recovery`] — never double-counting into the natural phase.

use fastpso_suite::fastpso::resilience::{retry_op, ResilienceConfig, RetryPolicy};
use fastpso_suite::fastpso::{CounterAsserts, GpuBackend, PsoBackend, PsoConfig, UpdateStrategy};
use fastpso_suite::functions::builtins::Sphere;
use fastpso_suite::gpu_sim::{AllocMode, Device, FaultPlan, Phase};

const ALL_STRATEGIES: [UpdateStrategy; 4] = [
    UpdateStrategy::GlobalMem,
    UpdateStrategy::SharedMem,
    UpdateStrategy::TensorCore,
    UpdateStrategy::ForLoop,
];

fn cfg(iters: usize) -> PsoConfig {
    // n ≤ 256 keeps the argmin reduction single-pass (`reduce_pass0`
    // only), so the per-iteration launch schedule below is exact.
    PsoConfig::builder(64, 8)
        .max_iter(iters)
        .seed(42)
        .build()
        .unwrap()
}

fn run_and_capture(strategy: UpdateStrategy, iters: usize) -> CounterAsserts {
    let b = GpuBackend::new().strategy(strategy);
    b.run(&cfg(iters), &Sphere).unwrap();
    CounterAsserts::capture(b.device())
}

/// Table 4's steady state: once the pool is warm, a whole run performs
/// **zero** driver allocations — for every swarm-update strategy.
#[test]
fn caching_allocator_reaches_zero_steady_state_allocs() {
    for strategy in ALL_STRATEGIES {
        let b = GpuBackend::new().strategy(strategy);
        b.run(&cfg(5), &Sphere).unwrap(); // warm the pool
        b.run(&cfg(5), &Sphere).unwrap(); // measured run (run() resets the profiler)
        let ca = CounterAsserts::capture(b.device());
        ca.assert_no_steady_state_allocs();
        assert!(
            ca.counters().device_alloc_cache_hits > 0,
            "{strategy:?}: the measured run should be served from the pool"
        );
    }
}

/// The `Realloc` contrast: cudaMalloc/cudaFree per weight matrix, every
/// iteration — the churn the paper's Table 4 eliminates.
#[test]
fn realloc_mode_pays_driver_allocations_every_iteration() {
    let iters = 5;
    let b = GpuBackend::new().alloc_mode(AllocMode::Realloc);
    b.run(&cfg(iters), &Sphere).unwrap();
    b.run(&cfg(iters), &Sphere).unwrap(); // even warm, Realloc never caches
    let ca = CounterAsserts::capture(b.device());
    let allocs = ca.driver_allocs();
    assert!(
        allocs >= 2 * iters as u64,
        "Realloc must pay ≥ 2 driver allocations per iteration \
         (the two weight matrices); saw {allocs} for {iters} iterations"
    );
    assert_eq!(
        ca.counters().device_alloc_cache_hits,
        0,
        "Realloc mode must never hit a cache"
    );
}

/// The steady-state launch schedule, pinned per kernel *name* and per
/// strategy: exactly one launch of each pipeline kernel per iteration.
/// Comparing a 3-iteration against a 6-iteration run isolates the
/// per-iteration rate from one-time init launches and conditional
/// kernels (`gbest_copy` fires only on improvement).
#[test]
fn launch_schedule_is_pinned_per_strategy() {
    for (strategy, vel, pos) in [
        (
            UpdateStrategy::GlobalMem,
            "velocity_update",
            "position_update",
        ),
        (
            UpdateStrategy::SharedMem,
            "velocity_update_smem",
            "position_update_smem",
        ),
        (
            UpdateStrategy::TensorCore,
            "velocity_update_wmma",
            "position_update_wmma",
        ),
        (
            UpdateStrategy::ForLoop,
            "velocity_update_forloop",
            "position_update_forloop",
        ),
    ] {
        let lo = run_and_capture(strategy, 3);
        let hi = run_and_capture(strategy, 6);
        CounterAsserts::assert_launches_per_iter(
            &lo,
            &hi,
            3,
            &[
                ("evaluate_swarm", 1),
                ("pbest_update", 1),
                ("reduce_pass0", 1),
                ("gen_l_weights", 1),
                ("gen_g_weights", 1),
                (vel, 1),
                (pos, 1),
            ],
        );
    }
}

/// Figure 6's memory-hierarchy ordering, as exact byte counts: shared-
/// memory tiling moves strictly less global-DRAM traffic than the plain
/// global-memory kernels (same bit-identical trajectory, so totals are
/// directly comparable), and the tensor-core path stages at least as
/// little as the tiled path in the swarm-update phase.
#[test]
fn traffic_ordering_tensor_le_shared_lt_global() {
    let iters = 6;
    let global = run_and_capture(UpdateStrategy::GlobalMem, iters);
    let smem = run_and_capture(UpdateStrategy::SharedMem, iters);
    let tensor = run_and_capture(UpdateStrategy::TensorCore, iters);

    // SharedMem < GlobalMem, strictly, over the whole run.
    smem.assert_global_traffic_at_most(global.dram_bytes() - 1);

    // Tiling only touches the swarm update; everything else is identical.
    let g_swarm = global.dram_bytes_in_phase(Phase::SwarmUpdate);
    let s_swarm = smem.dram_bytes_in_phase(Phase::SwarmUpdate);
    let t_swarm = tensor.dram_bytes_in_phase(Phase::SwarmUpdate);
    assert!(
        s_swarm < g_swarm,
        "tiling must cut swarm-update DRAM traffic: {s_swarm} vs {g_swarm}"
    );
    assert!(
        t_swarm <= s_swarm,
        "tensor-core staging must not exceed the tiled path: {t_swarm} vs {s_swarm}"
    );
    // Tiling pays for the DRAM cut with on-chip traffic.
    assert!(
        smem.log().phase_counters(Phase::SwarmUpdate).shared_bytes
            > global.log().phase_counters(Phase::SwarmUpdate).shared_bytes
    );
}

/// The profiler's per-record totals reconstruct the timeline's aggregate
/// counters to the last byte — for every strategy and for a resilient
/// (checkpointing) run.
#[test]
fn profiler_totals_equal_timeline_totals() {
    for strategy in ALL_STRATEGIES {
        run_and_capture(strategy, 4).assert_profiler_matches_timeline();
    }
    let b = GpuBackend::new().resilient(ResilienceConfig::default());
    b.run(&cfg(10), &Sphere).unwrap();
    CounterAsserts::capture(b.device()).assert_profiler_matches_timeline();
}

/// The bit-exact strategies (everything but the f16-rounding tensor path)
/// agree on `gbest` through raw bit patterns.
#[test]
fn bit_exact_strategies_share_one_gbest() {
    let c = cfg(8);
    let global = GpuBackend::new()
        .strategy(UpdateStrategy::GlobalMem)
        .run(&c, &Sphere)
        .unwrap();
    let smem = GpuBackend::new()
        .strategy(UpdateStrategy::SharedMem)
        .run(&c, &Sphere)
        .unwrap();
    let forloop = GpuBackend::new()
        .strategy(UpdateStrategy::ForLoop)
        .run(&c, &Sphere)
        .unwrap();
    CounterAsserts::assert_bit_identical_gbest(&global, &smem);
    CounterAsserts::assert_bit_identical_gbest(&global, &forloop);
}

/// Regression for the fault-retry accounting bug: a retried launch used to
/// double-count the work its failed attempt had already completed into the
/// natural phase. Now the repeats charge to [`Phase::Recovery`]: every
/// non-recovery phase of a faulted run matches the fault-free run exactly —
/// counters *and* modeled seconds — and the recovery ledger shows precisely
/// the redundant work plus backoff.
#[test]
fn retried_launch_charges_recovery_not_natural_phase() {
    let c = cfg(6);

    // Clean resilient probe run: find the launch ordinal of iteration 1's
    // `gen_l_weights` (the second record of that name). Its retry replays
    // the two weight-matrix allocations the failed attempt completed.
    let probe = GpuBackend::new().resilient(ResilienceConfig::default());
    let clean_result = probe.run(&c, &Sphere).unwrap();
    let clean = CounterAsserts::capture(probe.device());
    let ordinal = clean
        .log()
        .kernels
        .iter()
        .filter(|k| k.name == "gen_l_weights")
        .nth(1)
        .expect("gen_l_weights launches every iteration")
        .ordinal;

    let faulted_backend = GpuBackend::new().resilient(ResilienceConfig::default());
    faulted_backend
        .device()
        .set_fault_plan(FaultPlan::new().with_transient_launch(ordinal));
    let faulted_result = faulted_backend.run(&c, &Sphere).unwrap();
    let faulted = CounterAsserts::capture(faulted_backend.device());
    assert_eq!(faulted_backend.device().fault_stats().injected, 1);

    CounterAsserts::assert_bit_identical_gbest(&clean_result, &faulted_result);
    for phase in Phase::ALL {
        if phase == Phase::Recovery {
            continue;
        }
        assert_eq!(
            faulted.timeline().phase_counters(phase),
            clean.timeline().phase_counters(phase),
            "{phase:?} counters must match the fault-free run exactly"
        );
        assert_eq!(
            faulted.timeline().seconds(phase),
            clean.timeline().seconds(phase),
            "{phase:?} modeled seconds must match the fault-free run exactly"
        );
    }
    // Recovery picked up the backoff plus exactly the replayed work: the
    // two pool-served weight-matrix allocations the failed attempt had
    // already performed.
    let mut expected = clean.timeline().phase_counters(Phase::Recovery);
    expected.device_alloc_cache_hits += 2;
    assert_eq!(
        faulted.timeline().phase_counters(Phase::Recovery),
        expected,
        "recovery must hold exactly the redundant re-executed work"
    );
    assert!(
        faulted.timeline().seconds(Phase::Recovery) > clean.timeline().seconds(Phase::Recovery)
    );
}

/// The allocation-gate variant of the same regression: fault the *last*
/// weight-matrix allocation of the run. The retry's replayed allocation
/// charges to recovery; the natural phases stay untouched.
#[test]
fn retried_alloc_charges_recovery_not_natural_phase() {
    let c = cfg(6);
    let probe = GpuBackend::new().resilient(ResilienceConfig::default());
    let clean_result = probe.run(&c, &Sphere).unwrap();
    let clean = CounterAsserts::capture(probe.device());
    // The final alloc record is the last iteration's `g` matrix; faulting
    // its gate means the attempt completed one allocation (`l`) first.
    let ordinal = clean.log().allocs.last().expect("allocs recorded").ordinal;

    let faulted_backend = GpuBackend::new().resilient(ResilienceConfig::default());
    faulted_backend
        .device()
        .set_fault_plan(FaultPlan::new().with_transient_alloc(ordinal));
    let faulted_result = faulted_backend.run(&c, &Sphere).unwrap();
    let faulted = CounterAsserts::capture(faulted_backend.device());
    assert_eq!(faulted_backend.device().fault_stats().injected, 1);

    CounterAsserts::assert_bit_identical_gbest(&clean_result, &faulted_result);
    for phase in Phase::ALL {
        if phase == Phase::Recovery {
            continue;
        }
        assert_eq!(
            faulted.timeline().phase_counters(phase),
            clean.timeline().phase_counters(phase),
            "{phase:?} counters must match the fault-free run exactly"
        );
    }
    let mut expected = clean.timeline().phase_counters(Phase::Recovery);
    expected.device_alloc_cache_hits += 1;
    assert_eq!(faulted.timeline().phase_counters(Phase::Recovery), expected);
}

/// The transfer-gate variant, at the device level: an op uploading two
/// buffers whose second upload is corrupted re-runs both; the natural
/// phase still sees exactly two uploads, the replayed first upload lands
/// in recovery.
#[test]
fn retried_upload_charges_recovery_not_natural_phase() {
    let dev = Device::v100();
    dev.set_fault_plan(FaultPlan::new().with_corrupted_transfer(2));
    let mut a = dev.alloc::<f32>(256).unwrap();
    let mut b = dev.alloc::<f32>(256).unwrap();
    let host = vec![1.0f32; 256];
    let policy = RetryPolicy::default();
    retry_op(&dev, &policy, || {
        a.upload(&host)?;
        b.upload(&host)?;
        Ok(())
    })
    .unwrap();

    let ca = CounterAsserts::capture(&dev);
    let bytes = (256 * std::mem::size_of::<f32>()) as u64;
    let natural = ca.timeline().phase_counters(Phase::Other);
    let recovery = ca.timeline().phase_counters(Phase::Recovery);
    assert_eq!(natural.transfers, 2, "the op's own uploads");
    assert_eq!(natural.h2d_bytes, 2 * bytes);
    assert_eq!(recovery.transfers, 1, "the replayed first upload");
    assert_eq!(recovery.h2d_bytes, bytes);
    assert!(
        ca.timeline().seconds(Phase::Recovery) > 0.0,
        "backoff charged"
    );
    ca.assert_profiler_matches_timeline();
}
