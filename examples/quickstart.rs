//! Quickstart: minimize a built-in benchmark function with FastPSO on the
//! simulated GPU, and compare against the sequential reference.
//!
//! Run with: `cargo run --release --example quickstart`

use fastpso_suite::fastpso::{GpuBackend, PsoBackend, PsoConfig, SeqBackend};
use fastpso_suite::functions::builtins::Sphere;
use fastpso_suite::functions::Objective;
use fastpso_suite::perf_model::Phase;

fn main() {
    // 2048 particles in 128 dimensions, 500 iterations — large enough that
    // the GPU's element-wise parallelism pays for its launch overhead, and
    // enough iterations to watch the inertia-decay schedule pull the
    // swarm in.
    let cfg = PsoConfig::builder(2048, 128)
        .max_iter(500)
        .seed(2024)
        .record_history(true)
        .build()
        .expect("valid config");

    println!(
        "Minimizing {} over {:?}^{}",
        Sphere.name(),
        Sphere.domain(),
        cfg.dim
    );

    // The paper's contribution: element-wise kernels on the (simulated) GPU.
    let gpu = GpuBackend::new();
    let result = gpu.run(&cfg, &Sphere).expect("GPU run");
    println!("\nfastpso (GPU, element-wise):");
    println!("  best value     : {:.6}", result.best_value);
    println!(
        "  modeled elapsed: {:.4} s on a Tesla V100",
        result.elapsed_seconds()
    );
    println!(
        "  swarm update   : {:.4} s ({:.0}% of total)",
        result.phase_seconds(Phase::SwarmUpdate),
        100.0 * result.timeline.fraction(Phase::SwarmUpdate)
    );

    // The sequential reference — identical trajectory, different hardware.
    let seq = SeqBackend.run(&cfg, &Sphere).expect("CPU run");
    println!("\nfastpso-seq (single CPU core):");
    println!("  best value     : {:.6}", seq.best_value);
    println!(
        "  modeled elapsed: {:.4} s on a Xeon E5-2640 v4",
        seq.elapsed_seconds()
    );

    assert_eq!(
        result.best_value, seq.best_value,
        "GPU and CPU backends share Philox streams: trajectories are bit-identical"
    );
    println!(
        "\nSame answer, {:.0}x modeled speedup — the paper's headline, reproduced.",
        seq.elapsed_seconds() / result.elapsed_seconds()
    );

    assert!(seq.elapsed_seconds() > result.elapsed_seconds() * 3.0);
    if let Some(h) = &result.history {
        println!("\nconvergence (gbest by iteration):");
        for t in [0, 50, 100, 200, 350, 499] {
            println!("  iter {t:>4}: {:.6}", h[t]);
        }
    }
}
