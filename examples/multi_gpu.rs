//! Multi-GPU FastPSO (paper §3.5): run the same optimization on 1, 2 and 4
//! simulated V100s under both decomposition strategies, and verify the
//! tile-matrix strategy reproduces the single-GPU trajectory bit-for-bit.
//!
//! Run with: `cargo run --release --example multi_gpu`

use fastpso_suite::fastpso::{
    GpuBackend, MultiGpuBackend, MultiGpuStrategy, PsoBackend, PsoConfig,
};
use fastpso_suite::functions::builtins::Rastrigin;

fn main() {
    let cfg = PsoConfig::builder(4096, 128)
        .max_iter(150)
        .seed(99)
        .build()
        .expect("valid config");

    let single = GpuBackend::new().run(&cfg, &Rastrigin).expect("single GPU");
    println!(
        "single V100          : best {:.4}, modeled {:.4} s",
        single.best_value,
        single.elapsed_seconds()
    );

    println!("\ntile-matrix decomposition (bit-identical to single GPU):");
    for n_dev in [2usize, 4] {
        let r = MultiGpuBackend::new(n_dev, MultiGpuStrategy::TileMatrix)
            .run(&cfg, &Rastrigin)
            .expect("multi GPU");
        println!(
            "  {n_dev} x V100: best {:.4}, modeled {:.4} s ({:.2}x vs single)",
            r.best_value,
            r.elapsed_seconds(),
            single.elapsed_seconds() / r.elapsed_seconds()
        );
        assert_eq!(
            r.best_value, single.best_value,
            "tile-matrix sharding must not change the trajectory"
        );
    }

    println!("\nparticle-split decomposition (independent sub-swarms, periodic exchange):");
    for sync_every in [5usize, 25] {
        let r = MultiGpuBackend::new(4, MultiGpuStrategy::ParticleSplit { sync_every })
            .run(&cfg, &Rastrigin)
            .expect("multi GPU");
        println!(
            "  4 x V100, sync every {sync_every:>2}: best {:.4}, modeled {:.4} s",
            r.best_value,
            r.elapsed_seconds()
        );
    }

    println!("\nNote: at this problem size a single V100 is far from saturated, so");
    println!("multi-GPU gains are modest — exactly why the paper leaves multi-GPU");
    println!("as a scaling path for larger swarms rather than a headline number.");
}
