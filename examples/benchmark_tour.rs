//! Tour of the built-in evaluation functions: run FastPSO over all ten
//! benchmark landscapes and report error-to-optimum for each, plus the
//! effect of the three swarm-update strategies on one of them.
//!
//! Run with: `cargo run --release --example benchmark_tour`

use fastpso_suite::fastpso::{GpuBackend, PsoBackend, PsoConfig, UpdateStrategy};
use fastpso_suite::functions::Builtin;

fn main() {
    let dim = 16;
    let cfg = PsoConfig::builder(384, dim)
        .max_iter(400)
        .seed(13)
        .build()
        .expect("valid config");

    println!(
        "{:<16} {:>12} {:>12} {:>10}",
        "function", "best value", "optimum", "error"
    );
    println!("{}", "-".repeat(54));
    for b in Builtin::ALL {
        let obj = b.objective();
        let r = GpuBackend::new().run(&cfg, obj).expect("run");
        let opt = obj.optimum(dim).unwrap_or(f64::NAN);
        let err = obj.error(r.best_value, dim).unwrap_or(f64::NAN);
        println!(
            "{:<16} {:>12.4} {:>12.4} {:>10.4}",
            obj.name(),
            r.best_value,
            opt,
            err
        );
    }

    println!("\nswarm-update strategies on Rastrigin (same seed):");
    let obj = Builtin::Rastrigin.objective();
    for (label, strategy) in [
        ("global-mem", UpdateStrategy::GlobalMem),
        ("shared-mem", UpdateStrategy::SharedMem),
        ("tensor-core", UpdateStrategy::TensorCore),
    ] {
        let r = GpuBackend::new()
            .strategy(strategy)
            .run(&cfg, obj)
            .expect("run");
        println!(
            "  {:<12} best {:>10.5}  swarm-update {:.5} s",
            label,
            r.best_value,
            r.phase_seconds(fastpso_suite::perf_model::Phase::SwarmUpdate)
        );
    }
    println!("\n(global and shared agree bitwise; tensor-core differs by its");
    println!(" documented f16 operand rounding yet still converges)");
}
