//! Star vs ring topology on a deceptive multi-modal landscape: the
//! global-best swarm converges fastest but can lock onto a local well; the
//! ring swarm communicates locally, keeps diversity longer, and trades
//! time-to-converge for robustness. Repeated over the paper's 10-seed
//! protocol via `fastpso::stats`.
//!
//! Run with: `cargo run --release --example topology_comparison`

use fastpso_suite::fastpso::stats::{paper_protocol_seeds, run_many};
use fastpso_suite::fastpso::{GpuBackend, PsoConfig, Topology};
use fastpso_suite::functions::builtins::Rastrigin;
use fastpso_suite::functions::{Objective, Shifted};

fn main() {
    // Shifted Rastrigin: the optimum sits off-center, so nothing is won by
    // origin bias; every well is a trap for an over-eager swarm.
    let objective = Shifted::new(Rastrigin, 1.1);
    let seeds = paper_protocol_seeds();

    println!(
        "{} over {:?}^12, 10 seeds x 400 iterations\n",
        objective.name(),
        objective.domain()
    );
    println!(
        "{:<14} {:>10} {:>10} {:>10} {:>10} {:>12}",
        "topology", "mean", "median", "best", "worst", "modeled s"
    );
    println!("{}", "-".repeat(70));

    for (label, topology) in [
        ("star (gbest)", Topology::Global),
        ("ring k=1", Topology::Ring { k: 1 }),
        ("ring k=3", Topology::Ring { k: 3 }),
    ] {
        let cfg = PsoConfig::builder(128, 12)
            .max_iter(400)
            .topology(topology)
            .build()
            .expect("valid config");
        let backend = GpuBackend::new();
        let s = run_many(&backend, &cfg, &objective, &seeds).expect("runs");
        println!(
            "{:<14} {:>10.4} {:>10.4} {:>10.4} {:>10.4} {:>12.5}",
            label,
            s.mean(),
            s.median(),
            s.min(),
            s.max(),
            s.mean_elapsed()
        );
    }

    println!("\nThe ring variants pay a small modeled-time premium (the lbest");
    println!("gather kernel) and typically trade mean quality for a tighter");
    println!("worst case — the classic lbest/gbest trade-off, now measurable");
    println!("on the same engine the paper's experiments use.");
}
