//! The customized-evaluation-function schema (paper §3.2): register an
//! arbitrary closure as the swarm evaluation function and let the engine
//! parallelize it — the Rust analogue of the paper's
//! `evaluation_kernel<L>(int dim, L lambda)` CUDA template.
//!
//! The example tunes a tiny simulated "PID controller": three gains are
//! scored by the closed-loop error of a discretized second-order plant.
//! This is the kind of black-box, non-differentiable objective PSO exists
//! for.
//!
//! Run with: `cargo run --release --example custom_objective`

use fastpso_suite::fastpso::{GpuBackend, PsoBackend, PsoConfig};
use fastpso_suite::functions::CustomObjective;

/// Closed-loop squared tracking error of a PID controller on a discrete
/// second-order plant, for gains `x = [kp, ki, kd]`.
fn pid_cost(x: &[f32]) -> f32 {
    let (kp, ki, kd) = (x[0], x[1], x[2]);
    let (mut y, mut v) = (0.0f32, 0.0f32); // plant state
    let mut integral = 0.0f32;
    let mut prev_err = 1.0f32;
    let dt = 0.05f32;
    let mut cost = 0.0f32;
    for _step in 0..200 {
        let err = 1.0 - y; // unit step reference
        integral += err * dt;
        let derivative = (err - prev_err) / dt;
        prev_err = err;
        let u = (kp * err + ki * integral + kd * derivative).clamp(-10.0, 10.0);
        // Plant: y'' = -2ζω y' - ω² y + ω² u  (ω = 1, ζ = 0.2)
        let acc = -0.4 * v - y + u;
        v += acc * dt;
        y += v * dt;
        cost += err * err * dt + 0.001 * u * u * dt;
    }
    if cost.is_finite() {
        cost
    } else {
        f32::MAX
    }
}

fn main() {
    // Wrap the closure through the schema. The flop estimate prices the
    // evaluation kernel in the GPU cost model (200 steps × ~15 ops / 3 dims).
    let objective = CustomObjective::new("pid-tuning", (0.0, 8.0), 1000, pid_cost);

    let cfg = PsoConfig::builder(256, 3)
        .max_iter(300)
        .seed(7)
        .build()
        .expect("valid config");

    let result = GpuBackend::new().run(&cfg, &objective).expect("tuning run");

    let g = &result.best_position;
    println!("custom objective      : pid-tuning");
    println!("best closed-loop cost : {:.5}", result.best_value);
    println!(
        "gains                 : kp={:.3}, ki={:.3}, kd={:.3}",
        g[0], g[1], g[2]
    );
    println!("modeled elapsed       : {:.4} s", result.elapsed_seconds());

    // Sanity: the tuned gains must beat a naive proportional controller.
    let naive = pid_cost(&[1.0, 0.0, 0.0]);
    println!("naive P-controller    : {naive:.5}");
    assert!(
        (result.best_value as f32) < naive,
        "PSO should beat the naive controller"
    );
    println!(
        "\nPSO beat the naive controller by {:.1}x.",
        naive / result.best_value as f32
    );
}
