//! The paper's §4.6 case study end-to-end: use FastPSO to tune the
//! thread/block launch configuration of the 25 kernels of a ThunderGBM-like
//! GBDT trainer, then retrain with the winning table and report the
//! speedup (Table 5's pipeline on one dataset).
//!
//! Run with: `cargo run --release --example thread_config_tuning`

use fastpso_suite::fastpso::{GpuBackend, PsoBackend, PsoConfig};
use fastpso_suite::gpu_sim::Device;
use fastpso_suite::perf_model::GpuProfile;
use fastpso_suite::tgbm::{Dataset, Gbm, TgbmConfig, ThreadConfObjective};

fn main() {
    // 1. Train with ThunderGBM-style default launch dims (256-thread
    //    blocks everywhere) and capture the kernel workload profile.
    let data = Dataset::e2006_like(); // wide matrix: tuning-sensitive
    let cfg = TgbmConfig::new(8, 6);
    let dev = Device::v100();
    let model = Gbm::train_on(&cfg, &data, dev.clone()).expect("baseline training");
    let default_time = dev.timeline().total_seconds();
    println!(
        "dataset               : {} ({} x {})",
        data.name,
        data.n_samples(),
        data.n_features()
    );
    println!("default launch table  : {default_time:.4} s modeled kernel time");
    println!(
        "training loss         : {:.4} -> {:.4}",
        model.loss_curve[0],
        model.loss_curve.last().unwrap()
    );

    // 2. Wrap the profile as the 50-dimensional ThreadConf objective and
    //    search it with FastPSO (each coordinate pair = one kernel's
    //    block size and grid scale).
    let objective = ThreadConfObjective::new(model.profile, cfg.clone(), GpuProfile::tesla_v100());
    let pso_cfg = PsoConfig::builder(512, 50)
        .max_iter(60)
        .seed(11)
        .build()
        .expect("valid config");
    let result = GpuBackend::new().run(&pso_cfg, &objective).expect("tuning");
    println!(
        "\nPSO tuning            : {} particles x {} iterations",
        512, 60
    );
    println!(
        "objective prediction  : {:.4} s",
        objective.time_of_position(&result.best_position)
    );

    // 3. Install the winner and retrain end-to-end to verify.
    let tuned_table = objective.decode(&result.best_position);
    let tuned_cfg = cfg.with_launch_table(tuned_table.clone());
    let dev = Device::v100();
    Gbm::train_on(&tuned_cfg, &data, dev.clone()).expect("tuned training");
    let tuned_time = dev.timeline().total_seconds();

    println!("tuned launch table    : {tuned_time:.4} s modeled kernel time");
    println!("end-to-end speedup    : {:.2}x", default_time / tuned_time);

    println!("\nper-kernel winners (first 5):");
    for (k, dims) in fastpso_suite::tgbm::KernelId::ALL
        .iter()
        .zip(&tuned_table)
        .take(5)
    {
        println!(
            "  {:<22} block={:<4} grid_scale={:.2}",
            k.name(),
            dims.block,
            dims.grid_scale
        );
    }

    assert!(
        tuned_time <= default_time * 1.001,
        "tuning must not regress the training time"
    );
}
