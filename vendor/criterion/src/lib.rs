//! Offline stand-in for the subset of the `criterion` API this workspace
//! uses. The build environment has no access to crates.io, so the real
//! criterion cannot be resolved.
//!
//! The benches in this workspace exist to *print modeled seconds* from
//! `perf-model`, not to do rigorous host-time statistics, so this shim
//! keeps the API surface (`benchmark_group`, `throughput`, `sample_size`,
//! `bench_function`, `bench_with_input`, `iter`) and reports a simple mean
//! wall-clock per iteration to stdout.

use std::time::Instant;

/// Throughput annotation attached to a group (printed, not analysed).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier composed of a function name and a parameter.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter` identifier, mirroring criterion's display form.
    pub fn new<P: std::fmt::Display>(name: &str, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }
}

/// Passed to benchmark closures; runs and times the measured routine.
pub struct Bencher {
    iters: u64,
    mean_ns: f64,
}

impl Bencher {
    /// Time `routine`, keeping its output alive so it isn't optimised away.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One warm-up call, then `iters` timed calls.
        let _ = std::hint::black_box(routine());
        let start = Instant::now();
        for _ in 0..self.iters {
            let _ = std::hint::black_box(routine());
        }
        self.mean_ns = start.elapsed().as_nanos() as f64 / self.iters as f64;
    }
}

/// A named group of benchmarks sharing sample-size/throughput settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: u64,
    throughput: Option<Throughput>,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Number of timed iterations per benchmark (criterion's sample count).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1) as u64;
        self
    }

    /// Annotate work-per-iteration for the group.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Run a benchmark under `id` within this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            iters: self.samples,
            mean_ns: 0.0,
        };
        f(&mut b);
        self.report(id, &b);
        self
    }

    /// Run a benchmark that closes over `input`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            iters: self.samples,
            mean_ns: 0.0,
        };
        f(&mut b, input);
        let id = id.id.clone();
        self.report(&id, &b);
        self
    }

    /// Finish the group (stdout reporting happens per-bench; nothing to do).
    pub fn finish(&mut self) {}

    fn report(&self, id: &str, b: &Bencher) {
        let per_iter = b.mean_ns;
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) if per_iter > 0.0 => {
                format!("  {:.1} Melem/s", n as f64 / per_iter * 1e3)
            }
            Some(Throughput::Bytes(n)) if per_iter > 0.0 => {
                format!("  {:.1} MiB/s", n as f64 / per_iter * 1e3 / 1.048_576)
            }
            _ => String::new(),
        };
        println!(
            "bench {:<40} {:>12.1} ns/iter ({} samples){}",
            format!("{}/{}", self.name, id),
            per_iter,
            b.iters,
            rate
        );
    }
}

/// Benchmark harness entry point (criterion's manager type).
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            samples: 10,
            throughput: None,
            _parent: self,
        }
    }

    /// Group-less benchmark (criterion compatibility).
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        self.benchmark_group("bench").bench_function(id, f);
        self
    }
}

/// Bundle benchmark functions under a group name.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_benches() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("smoke");
        g.sample_size(3)
            .throughput(Throughput::Elements(100))
            .bench_function("sum", |b| {
                b.iter(|| (0..100u64).sum::<u64>());
            });
        g.bench_with_input(BenchmarkId::new("sq", 7u64), &7u64, |b, &n| {
            b.iter(|| n * n);
        });
        g.finish();
    }
}
