//! Offline stand-in for the subset of the `rayon` API this workspace uses.
//!
//! The build environment has no access to crates.io, so the real rayon
//! cannot be resolved. This facade keeps every `par_iter`/`par_chunks_mut`
//! call site source-compatible while executing the iterator pipelines
//! **sequentially** on the calling thread.
//!
//! Why sequential execution is acceptable here:
//!
//! * The workspace never uses rayon for host wall-clock performance —
//!   every benchmark reports *modeled* seconds from `perf-model`, which are
//!   pure arithmetic over operation counters and identical regardless of
//!   host parallelism.
//! * Sequential execution is trivially deterministic, which strengthens the
//!   reproduction's bit-identical-trajectory guarantees (real rayon already
//!   had to be used carefully to keep them).
//!
//! Only the combinators the workspace calls are provided: `enumerate`,
//! `zip`, `zip_eq`, `map`, `copied`, `for_each`, `sum`, `collect` and
//! rayon-style `reduce(identity, op)`.

/// A "parallel" iterator: a thin wrapper over a standard iterator that
/// exposes the rayon combinator names used by this workspace.
pub struct ParIter<I>(I);

impl<I: Iterator> ParIter<I> {
    /// Pair every item with its index.
    pub fn enumerate(self) -> ParIter<std::iter::Enumerate<I>> {
        ParIter(self.0.enumerate())
    }

    /// Transform items.
    pub fn map<B, F: FnMut(I::Item) -> B>(self, f: F) -> ParIter<std::iter::Map<I, F>> {
        ParIter(self.0.map(f))
    }

    /// Zip with another parallel iterator (shortest length wins, like
    /// rayon's `zip` on equal-length inputs).
    pub fn zip<J: IntoParallelIterator>(self, other: J) -> ParIter<std::iter::Zip<I, J::Iter>> {
        ParIter(self.0.zip(other.into_par_iter().0))
    }

    /// Zip with another parallel iterator, asserting equal lengths (the
    /// contract rayon's `zip_eq` checks).
    pub fn zip_eq<J: IntoParallelIterator>(self, other: J) -> ParIter<std::iter::Zip<I, J::Iter>>
    where
        I: ExactSizeIterator,
        J::Iter: ExactSizeIterator,
    {
        let other = other.into_par_iter().0;
        assert_eq!(self.0.len(), other.len(), "zip_eq: length mismatch");
        ParIter(self.0.zip(other))
    }

    /// Run `f` on every item.
    pub fn for_each<F: FnMut(I::Item)>(self, f: F) {
        self.0.for_each(f)
    }

    /// Sum all items.
    pub fn sum<S: std::iter::Sum<I::Item>>(self) -> S {
        self.0.sum()
    }

    /// Rayon-style reduction: fold with `op` starting from `identity()`.
    /// For the associative operators rayon requires, this sequential fold
    /// produces the same result as any parallel split.
    pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> I::Item
    where
        ID: Fn() -> I::Item,
        OP: Fn(I::Item, I::Item) -> I::Item,
    {
        self.0.fold(identity(), op)
    }

    /// Collect into a container.
    pub fn collect<C: FromIterator<I::Item>>(self) -> C {
        self.0.collect()
    }
}

impl<'a, I, T> ParIter<I>
where
    T: Copy + 'a,
    I: Iterator<Item = &'a T>,
{
    /// Copy referenced items.
    pub fn copied(self) -> ParIter<std::iter::Copied<I>> {
        ParIter(self.0.copied())
    }
}

/// Types convertible into a [`ParIter`] (rayon's `IntoParallelIterator`).
pub trait IntoParallelIterator {
    /// Underlying iterator type.
    type Iter: Iterator;
    /// Convert into a parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Iter>;
}

impl<I: Iterator> IntoParallelIterator for ParIter<I> {
    type Iter = I;
    fn into_par_iter(self) -> ParIter<I> {
        self
    }
}

impl<T> IntoParallelIterator for std::ops::Range<T>
where
    std::ops::Range<T>: Iterator,
{
    type Iter = std::ops::Range<T>;
    fn into_par_iter(self) -> ParIter<Self::Iter> {
        ParIter(self)
    }
}

/// Shared-slice entry points (rayon's `ParallelSlice` +
/// `IntoParallelRefIterator`).
pub trait ParallelSlice<T> {
    /// Iterate over references.
    fn par_iter(&self) -> ParIter<std::slice::Iter<'_, T>>;
    /// Exact-size chunks (remainder dropped, as in `chunks_exact`).
    fn par_chunks_exact(&self, size: usize) -> ParIter<std::slice::ChunksExact<'_, T>>;
}

/// Mutable-slice entry points (rayon's `ParallelSliceMut` +
/// `IntoParallelRefMutIterator`).
pub trait ParallelSliceMut<T> {
    /// Iterate over mutable references.
    fn par_iter_mut(&mut self) -> ParIter<std::slice::IterMut<'_, T>>;
    /// Mutable chunks (last may be short).
    fn par_chunks_mut(&mut self, size: usize) -> ParIter<std::slice::ChunksMut<'_, T>>;
    /// Exact-size mutable chunks.
    fn par_chunks_exact_mut(&mut self, size: usize) -> ParIter<std::slice::ChunksExactMut<'_, T>>;
}

impl<T> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> ParIter<std::slice::Iter<'_, T>> {
        ParIter(self.iter())
    }
    fn par_chunks_exact(&self, size: usize) -> ParIter<std::slice::ChunksExact<'_, T>> {
        ParIter(self.chunks_exact(size))
    }
}

impl<T> ParallelSliceMut<T> for [T] {
    fn par_iter_mut(&mut self) -> ParIter<std::slice::IterMut<'_, T>> {
        ParIter(self.iter_mut())
    }
    fn par_chunks_mut(&mut self, size: usize) -> ParIter<std::slice::ChunksMut<'_, T>> {
        ParIter(self.chunks_mut(size))
    }
    fn par_chunks_exact_mut(&mut self, size: usize) -> ParIter<std::slice::ChunksExactMut<'_, T>> {
        ParIter(self.chunks_exact_mut(size))
    }
}

/// The rayon prelude: everything call sites need in scope.
pub mod prelude {
    pub use crate::{IntoParallelIterator, ParIter, ParallelSlice, ParallelSliceMut};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn combinators_match_std() {
        let v = [1u64, 2, 3, 4];
        let s: u64 = v.par_iter().copied().map(|x| x * 2).sum();
        assert_eq!(s, 20);
        let r = v.par_iter().copied().enumerate().reduce(
            || (usize::MAX, u64::MAX),
            |a, b| if b.1 < a.1 { b } else { a },
        );
        assert_eq!(r, (0, 1));
    }

    #[test]
    fn chunked_mutation() {
        let mut a = vec![0u32; 6];
        let mut b = vec![0u32; 3];
        a.par_chunks_mut(2)
            .zip(b.par_chunks_mut(1))
            .enumerate()
            .for_each(|(i, (ac, bc))| {
                ac.iter_mut().for_each(|x| *x = i as u32);
                bc[0] = i as u32 * 10;
            });
        assert_eq!(a, [0, 0, 1, 1, 2, 2]);
        assert_eq!(b, [0, 10, 20]);
    }

    #[test]
    #[should_panic(expected = "zip_eq")]
    fn zip_eq_checks_lengths() {
        let a = [1, 2, 3];
        let b = [1, 2];
        a.par_iter().zip_eq(b.par_iter()).for_each(|_| {});
    }

    #[test]
    fn range_into_par_iter_collects() {
        let v: Vec<usize> = (0..5usize).into_par_iter().map(|i| i * i).collect();
        assert_eq!(v, [0, 1, 4, 9, 16]);
    }
}
