//! Offline stand-in for the subset of the `proptest` API this workspace uses.
//!
//! The build environment has no access to crates.io, so the real proptest
//! cannot be resolved. This shim keeps every `proptest! { ... }` test
//! source-compatible: the macro, `ProptestConfig::with_cases`, `any::<T>()`,
//! numeric range strategies, `prop::collection::vec`, and the
//! `prop_assert!*` / `prop_assume!` family.
//!
//! Differences from real proptest, deliberate and documented:
//!
//! * Case generation is **deterministic**: a splitmix64 stream seeded from a
//!   hash of the test name. Reruns always exercise identical inputs, which
//!   suits a reproduction whose headline guarantees are bit-identical runs.
//! * There is **no shrinking**. On failure the panic message reports the
//!   case index so the failure is still reproducible (same seed).
//! * `prop_assume!` rejections are retried up to a cap instead of feeding a
//!   global rejection budget.

use std::ops::Range;

/// Test-runner configuration. Only `cases` is consumed.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases to run.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// Config running `cases` generated cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Why a single generated case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// An assertion failed; the run fails.
    Fail(String),
    /// `prop_assume!` filtered the input; the case is retried.
    Reject,
}

/// Deterministic splitmix64 generator used for case generation.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    fn from_name(name: &str) -> Self {
        // FNV-1a over the test name gives a stable per-test seed.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: h }
    }

    /// Next raw 64-bit output (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, bound)`.
    fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Multiply-shift bounded draw; bias is negligible for test inputs.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

/// A value generator (the shim's analogue of proptest's `Strategy`).
pub trait Strategy {
    /// Type of values produced.
    type Value;
    /// Produce one value from the deterministic stream.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

/// Types with a full-domain default strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Draw one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64()
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() as u32
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Raw bit patterns: covers NaN, infinities and subnormals like the
        // real `any::<f32>()` domain.
        f32::from_bits(rng.next_u64() as u32)
    }
}

/// Strategy over every value of `T` (returned by [`any`]).
pub struct Any<T>(std::marker::PhantomData<T>);

/// Full-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                let v = self.start as f64 + unit * (self.end as f64 - self.start as f64);
                v as $t
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy producing `Vec`s with lengths drawn from `len` and elements
    /// from `element`.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Vec of `element` values with a length in `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.clone().generate(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Run one property test: `cases` generated inputs, retrying `Reject`ed
/// cases up to a cap. Called by the expansion of [`proptest!`].
pub fn run_proptest<F>(config: ProptestConfig, name: &str, mut case: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    let mut rng = TestRng::from_name(name);
    let mut rejects: u32 = 0;
    let max_rejects = config.cases.saturating_mul(16).max(1024);
    let mut passed = 0u32;
    while passed < config.cases {
        match case(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject) => {
                rejects += 1;
                assert!(
                    rejects <= max_rejects,
                    "proptest '{name}': too many prop_assume! rejections \
                     ({rejects}) for {} cases",
                    config.cases
                );
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!("proptest '{name}' failed at case {passed}: {msg}");
            }
        }
    }
}

/// The proptest entry macro: expands each `fn name(arg in strategy, ...)`
/// item into a `#[test]` driving [`run_proptest`].
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal muncher behind [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            $crate::run_proptest($cfg, stringify!($name), |__proptest_rng| {
                $(let $arg = $crate::Strategy::generate(&($strat), __proptest_rng);)+
                let __proptest_result: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| {
                        $body
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    })();
                __proptest_result
            });
        }
        $crate::__proptest_tests! { ($cfg) $($rest)* }
    };
}

/// Fallible assertion: fails the current case without panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Fallible equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `{}` == `{}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)*);
    }};
}

/// Fallible inequality assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l != r,
            "assertion failed: `{}` != `{}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, $($fmt)*);
    }};
}

/// Filter the current case: reject inputs that don't satisfy `cond`.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// Prelude matching `proptest::prelude::*` for the names this workspace uses.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Arbitrary,
        ProptestConfig, Strategy, TestCaseError,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn ranges_stay_in_bounds(x in 3usize..17, y in -2.0f64..2.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y));
        }

        #[test]
        fn vec_lengths_respect_range(v in prop::collection::vec(1usize..100, 2..9)) {
            prop_assert!((2..9).contains(&v.len()));
            prop_assert!(v.iter().all(|&e| (1..100).contains(&e)));
        }

        #[test]
        fn assume_filters(x in 0u64..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
            prop_assert_ne!(x % 2, 1);
        }
    }

    #[test]
    fn determinism_per_name() {
        let mut a = super::TestRng::from_name("same");
        let mut b = super::TestRng::from_name("same");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = super::TestRng::from_name("other");
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failures_panic_with_case_index() {
        super::run_proptest(super::ProptestConfig::with_cases(4), "boom", |_| {
            Err(super::TestCaseError::Fail("nope".into()))
        });
    }

    #[test]
    fn any_f32_covers_bit_patterns() {
        let mut rng = super::TestRng::from_name("bits");
        let vals: Vec<f32> = (0..512).map(|_| f32::arbitrary(&mut rng)).collect();
        assert!(vals.iter().any(|v| !v.is_finite()) || vals.iter().any(|v| v.is_finite()));
    }
}
